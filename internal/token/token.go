// Package token implements the DEcorum token manager (§3.1, §5 of the
// paper): the server-side registry of guarantees made to clients about
// what operations they may perform locally on cached file state.
//
// Token types (§5.2):
//
//   - Data read/write tokens cover a byte range of file data. A read data
//     token lets the holder use cached data without revalidation RPCs; a
//     write data token lets it update cached data without writing through.
//   - Status read/write tokens cover the file's status (attributes).
//   - Lock read/write tokens cover byte ranges for file locking.
//   - Open tokens cover open modes: normal read, normal write, execute,
//     shared read, exclusive write, with the compatibility matrix of
//     Figure 3 (reconstructed in DESIGN.md).
//   - A whole-volume token (§3.8) lets a replication server treat its
//     replica as valid until anything in the volume changes.
//
// Tokens of different types are always compatible ("they refer to separate
// components of files"); same-type conflicts follow the rules above.
// Before granting a token, the manager revokes incompatible ones by
// calling the virtual revoke procedure of the host that holds them (§5.1:
// clients register an afs_host object with a revoke procedure). A host may
// decline to return a lock or open token — the normal action when it has
// the file locked or open (§5.3) — in which case the grant fails with
// ErrConflict.
//
// The manager is sharded by FID (the buffer pool's shard pattern): each
// shard has its own mutex, per-file token index, serialization counters,
// and lease-expiry heap, so grants, revokes, serial bumps, and reclaims on
// independent files never contend. The §6.3 conflict and compatibility
// checks are per-file, so confining them to one shard is
// semantics-preserving by construction. Three concerns stay cross-shard:
//
//   - the host registry, behind its own read-mostly RWMutex (every revoke
//     looks a host up; registration is rare);
//   - whole-volume tokens (§3.8), indexed under volMu: a write-class grant
//     holds volMu shared while it checks for replica holders, and a
//     whole-volume acquire holds it exclusively while it scans every
//     shard, so the two can never miss each other;
//   - the recovery Gate, consulted before any lock is taken.
//
// Lock order: volMu before shard.mu. Shard locks never nest — cross-shard
// sweeps (Unregister, the whole-volume scan) visit shards one at a time.
package token

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"decorum/internal/fs"
	"decorum/internal/obs"
)

// Type is a bitmask of token types. A single token may carry several types
// (e.g. status read + data read granted together by a fetch).
type Type uint32

// Token types.
const (
	DataRead Type = 1 << iota
	DataWrite
	StatusRead
	StatusWrite
	LockRead
	LockWrite
	OpenRead
	OpenWrite
	OpenExecute
	OpenShared
	OpenExclusive
	WholeVolume
)

// Groups of related types.
const (
	DataTypes   = DataRead | DataWrite
	StatusTypes = StatusRead | StatusWrite
	LockTypes   = LockRead | LockWrite
	OpenTypes   = OpenRead | OpenWrite | OpenExecute | OpenShared | OpenExclusive
	WriteTypes  = DataWrite | StatusWrite | OpenWrite | OpenExclusive
	AllTypes    = DataTypes | StatusTypes | LockTypes | OpenTypes | WholeVolume
)

var typeNames = []struct {
	t Type
	s string
}{
	{DataRead, "data-read"}, {DataWrite, "data-write"},
	{StatusRead, "status-read"}, {StatusWrite, "status-write"},
	{LockRead, "lock-read"}, {LockWrite, "lock-write"},
	{OpenRead, "open-read"}, {OpenWrite, "open-write"},
	{OpenExecute, "open-execute"}, {OpenShared, "open-shared"},
	{OpenExclusive, "open-exclusive"}, {WholeVolume, "whole-volume"},
}

func (t Type) String() string {
	var parts []string
	for _, n := range typeNames {
		if t&n.t != 0 {
			parts = append(parts, n.s)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// Range is a half-open byte range [Start, End). WholeFile covers
// everything.
type Range struct {
	Start int64
	End   int64
}

// WholeFile is the range covering any possible byte.
var WholeFile = Range{0, math.MaxInt64}

// Overlaps reports whether two ranges share any byte.
func (r Range) Overlaps(o Range) bool { return r.Start < o.End && o.Start < r.End }

// Contains reports whether r covers all of o.
func (r Range) Contains(o Range) bool { return r.Start <= o.Start && o.End <= r.End }

func (r Range) String() string {
	if r == WholeFile {
		return "[*]"
	}
	return fmt.Sprintf("[%d,%d)", r.Start, r.End)
}

// openCompat is the Figure 3 compatibility matrix, reconstructed from the
// paper's §5.4 semantics (see DESIGN.md): rows/cols are open subtypes;
// true = the two opens may coexist on different hosts.
var openCompat = map[Type]map[Type]bool{
	OpenRead: {
		OpenRead: true, OpenWrite: true, OpenExecute: true, OpenShared: true, OpenExclusive: false,
	},
	OpenWrite: {
		OpenRead: true, OpenWrite: true, OpenExecute: false, OpenShared: true, OpenExclusive: false,
	},
	OpenExecute: {
		OpenRead: true, OpenWrite: false, OpenExecute: true, OpenShared: true, OpenExclusive: false,
	},
	OpenShared: {
		OpenRead: true, OpenWrite: true, OpenExecute: true, OpenShared: true, OpenExclusive: false,
	},
	OpenExclusive: {
		OpenRead: false, OpenWrite: false, OpenExecute: false, OpenShared: false, OpenExclusive: false,
	},
}

// OpenSubtypes lists the open-token subtypes in matrix order.
var OpenSubtypes = []Type{OpenRead, OpenWrite, OpenExecute, OpenShared, OpenExclusive}

// OpenCompatible reports Figure 3 for two single open subtypes.
func OpenCompatible(a, b Type) bool { return openCompat[a][b] }

// Compatible reports whether a token of types ta over range ra coexists
// with one of types tb over rb (held by a different host). The rule set
// (§5.2):
//
//   - different types never conflict;
//   - data: read/write and write/write conflict when ranges overlap;
//   - status: any write conflicts with anything;
//   - lock: read/write and write/write conflict when ranges overlap;
//   - open: the Figure 3 matrix;
//   - whole-volume conflicts with any write-class type (handled at the
//     volume level by the manager).
func Compatible(ta Type, ra Range, tb Type, rb Range) bool {
	// Data.
	if ta&DataWrite != 0 && tb&DataTypes != 0 && ra.Overlaps(rb) {
		return false
	}
	if tb&DataWrite != 0 && ta&DataTypes != 0 && ra.Overlaps(rb) {
		return false
	}
	// Status.
	if ta&StatusWrite != 0 && tb&StatusTypes != 0 {
		return false
	}
	if tb&StatusWrite != 0 && ta&StatusTypes != 0 {
		return false
	}
	// Locks.
	if ta&LockWrite != 0 && tb&LockTypes != 0 && ra.Overlaps(rb) {
		return false
	}
	if tb&LockWrite != 0 && ta&LockTypes != 0 && ra.Overlaps(rb) {
		return false
	}
	// Opens: every subtype pair present must be pairwise compatible.
	for _, sa := range OpenSubtypes {
		if ta&sa == 0 {
			continue
		}
		for _, sb := range OpenSubtypes {
			if tb&sb == 0 {
				continue
			}
			if !openCompat[sa][sb] {
				return false
			}
		}
	}
	return true
}

// ID names one granted token. The shard that issued a token is encoded in
// the ID ((id-1) mod shard count), so Release and Renew route straight to
// the owning shard without a global index.
type ID uint64

// Token is one guarantee held by a host.
type Token struct {
	ID     ID
	FID    fs.FID
	Types  Type
	Range  Range
	HostID uint64
	// Serial is the per-file serialization counter stamped when the
	// token was granted (§6.2).
	Serial uint64
	// Expiry is the lease end in clock units (0 = no lease).
	Expiry int64
}

// Host is the registered client of the token manager — the paper's
// afs_host with its virtual revoke procedure. Implementations include the
// protocol exporter's per-client connection records and the glue layer's
// local host.
type Host interface {
	// HostID returns the host's stable identity.
	HostID() uint64
	// Revoke asks the host to stop using tok and return it. For write
	// tokens the host stores back dirty state before returning. The
	// return value reports whether the token was actually returned: a
	// host may keep lock/open tokens it is still using (§5.3).
	Revoke(tok Token) (returned bool, err error)
}

// TracedHost is a Host whose revoke procedure can carry a trace context
// across the wire, so the revocation callback issued while serving one
// client's acquire is attributable to that client's operation. Hosts that
// implement it receive the acquirer's context; plain Hosts still work.
type TracedHost interface {
	Host
	RevokeTraced(tok Token, tc obs.SpanContext) (returned bool, err error)
}

// Errors.
var (
	ErrConflict = errors.New("token: conflicting token not returned")
	ErrNoHost   = errors.New("token: host not registered")
	ErrNoToken  = errors.New("token: no such token")
	ErrRetries  = errors.New("token: too many revocation rounds")
)

// Stats counts manager activity, for the experiments.
type Stats struct {
	Grants      uint64
	Revocations uint64
	Refusals    uint64
	Releases    uint64
	Expired     uint64
}

// DefaultShards is how many shards NewManager splits the token state
// into — the buffer pool's cap (16): enough that a cell's worth of
// concurrent grants on independent files almost never collide, small
// enough that cross-shard sweeps (Unregister, whole-volume scans) stay
// cheap.
const DefaultShards = 16

// leaseEntry is one pending lease expiry in a shard's heap.
type leaseEntry struct {
	expiry int64
	id     ID
}

// leaseHeap is a min-heap of lease expiries, with lazy deletion: Renew
// pushes a fresh entry and the stale one is skipped when popped (its
// recorded expiry no longer matches the token's).
type leaseHeap []leaseEntry

func (h leaseHeap) Len() int            { return len(h) }
func (h leaseHeap) Less(i, j int) bool  { return h[i].expiry < h[j].expiry }
func (h leaseHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *leaseHeap) Push(x any)         { *h = append(*h, x.(leaseEntry)) }
func (h *leaseHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// shard holds the token state for the FIDs that hash to it. Every field
// is guarded by the shard's own mutex; nothing in a shard is ever
// consulted from another shard's critical section (shard locks never
// nest).
type shard struct {
	idx   int // fixed at construction: this shard's position
	count int // fixed at construction: total shard count

	mu      sync.Mutex
	byFile  map[fs.FID]map[ID]*Token // guarded by mu
	byID    map[ID]*Token            // guarded by mu
	serials map[fs.FID]uint64        // guarded by mu
	nextSeq uint64                   // guarded by mu
	leases  leaseHeap                // guarded by mu
}

// Manager is one server's token manager, sharded by FID (see the package
// comment for the sharding and locking story).
type Manager struct {
	// Clock supplies lease timestamps (settable in tests).
	Clock func() int64
	// LeaseDuration is added to Clock() for new tokens (0 = no leases).
	LeaseDuration int64
	// Gate, when set, is consulted with the acquiring host's ID before
	// every ordinary grant; a non-nil error aborts the acquire without
	// revoking anything. The recovery guard installs itself here so a
	// restarted server answers grants with fs.ErrGrace until the host has
	// reclaimed (token state recovery). Reclaim bypasses the gate. Set
	// before the manager serves traffic.
	Gate func(hostID uint64) error

	// hostsMu guards the host registry alone. It is read-mostly (every
	// revocation looks its target host up; registration happens once per
	// association) and is never held while a shard lock is taken.
	hostsMu sync.RWMutex
	hosts   map[uint64]Host // guarded by hostsMu

	// volMu guards the whole-volume token index (§3.8) and orders before
	// shard.mu. Write-class grants hold it shared while consulting byVol;
	// a whole-volume acquire holds it exclusively, freezing write-class
	// grants cell-wide while it scans the shards one at a time.
	volMu sync.RWMutex
	byVol map[fs.VolumeID]map[ID]*Token // guarded by volMu

	shards []*shard

	// Activity metrics (obs primitives: atomic, safe with or without any
	// lock). Always allocated, so Stats() works whether or not the
	// manager was Instrumented into a registry.
	grants      *obs.Counter
	revocations *obs.Counter
	refusals    *obs.Counter
	releases    *obs.Counter
	expired     *obs.Counter
	grantNs     *obs.Histogram // whole Acquire, incl. revocation rounds
	revokeRTT   *obs.Histogram // one host.Revoke round-trip
}

// NewManager returns an empty manager with DefaultShards shards.
func NewManager() *Manager { return NewManagerShards(DefaultShards) }

// NewManagerShards returns an empty manager split into n shards (clamped
// to [1, 64]). n = 1 is the unsharded behaviour, kept selectable so the
// benchmarks can measure the single-lock baseline in-tree.
func NewManagerShards(n int) *Manager {
	if n < 1 {
		n = 1
	}
	if n > 64 {
		n = 64
	}
	m := &Manager{
		Clock:       func() int64 { return 0 },
		hosts:       make(map[uint64]Host),
		byVol:       make(map[fs.VolumeID]map[ID]*Token),
		shards:      make([]*shard, n),
		grants:      obs.NewCounter(),
		revocations: obs.NewCounter(),
		refusals:    obs.NewCounter(),
		releases:    obs.NewCounter(),
		expired:     obs.NewCounter(),
		grantNs:     obs.NewHistogram(),
		revokeRTT:   obs.NewHistogram(),
	}
	for i := range m.shards {
		m.shards[i] = &shard{
			idx:     i,
			count:   n,
			byFile:  make(map[fs.FID]map[ID]*Token),
			byID:    make(map[ID]*Token),
			serials: make(map[fs.FID]uint64),
		}
	}
	return m
}

// Shards reports how many shards the manager was built with.
func (m *Manager) Shards() int { return len(m.shards) }

// shardOf hashes a FID to its shard. All of a file's tokens, serials, and
// conflict checks live on one shard, so the §6.3 per-file compatibility
// check never crosses a shard boundary.
func (m *Manager) shardOf(fid fs.FID) *shard {
	if len(m.shards) == 1 {
		return m.shards[0]
	}
	h := uint64(fid.Volume)
	h = h*0x9e3779b97f4a7c15 + fid.Vnode
	h = h*0x9e3779b97f4a7c15 + fid.Uniq
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return m.shards[h%uint64(len(m.shards))]
}

// shardOfID recovers the shard that issued an ID.
func (m *Manager) shardOfID(id ID) *shard {
	return m.shards[uint64(id-1)%uint64(len(m.shards))]
}

// Instrument attaches the manager's metrics to reg under the "token."
// prefix. The counters are the same cells Stats() reads, so the registry
// and the accessor always agree.
func (m *Manager) Instrument(reg *obs.Registry) {
	reg.AttachCounter("token.grants", m.grants)
	reg.AttachCounter("token.revocations", m.revocations)
	reg.AttachCounter("token.refusals", m.refusals)
	reg.AttachCounter("token.releases", m.releases)
	reg.AttachCounter("token.expired", m.expired)
	reg.AttachHistogram("token.grant_ns", m.grantNs)
	reg.AttachHistogram("token.revoke_rtt_ns", m.revokeRTT)
}

// Register adds a host; its tokens can now be granted and revoked.
func (m *Manager) Register(h Host) {
	m.hostsMu.Lock()
	defer m.hostsMu.Unlock()
	m.hosts[h.HostID()] = h
}

// Unregister removes a host and discards every token it held (a crashed
// client's write-backs are lost, exactly as in the paper's model). volMu
// is taken exclusively for the whole sweep so any whole-volume tokens can
// be unindexed in the same pass; shards are visited one at a time.
func (m *Manager) Unregister(hostID uint64) {
	m.hostsMu.Lock()
	delete(m.hosts, hostID)
	m.hostsMu.Unlock()
	m.volMu.Lock()
	for _, s := range m.shards {
		s.mu.Lock()
		for id, tok := range s.byID {
			if tok.HostID == hostID {
				s.dropLocked(id)
				m.removeVolLocked(tok)
			}
		}
		s.mu.Unlock()
	}
	m.volMu.Unlock()
}

// hostOf looks a host up under the read lock.
func (m *Manager) hostOf(id uint64) Host {
	m.hostsMu.RLock()
	defer m.hostsMu.RUnlock()
	return m.hosts[id]
}

// registered reports whether the host may be granted tokens.
func (m *Manager) registered(id uint64) bool {
	m.hostsMu.RLock()
	defer m.hostsMu.RUnlock()
	_, ok := m.hosts[id]
	return ok
}

// dropLocked removes one token from the shard's indexes and returns it
// (nil if unknown). Whole-volume tokens are also indexed in Manager.byVol;
// the caller owns that removal (removeVolLocked, under volMu).
func (s *shard) dropLocked(id ID) *Token {
	tok, ok := s.byID[id]
	if !ok {
		return nil
	}
	delete(s.byID, id)
	if ft, ok := s.byFile[tok.FID]; ok {
		delete(ft, id)
		if len(ft) == 0 {
			delete(s.byFile, tok.FID)
		}
	}
	return tok
}

// removeVolLocked unindexes a whole-volume token. Caller holds volMu
// exclusively. A nil or non-whole-volume token is a no-op.
func (m *Manager) removeVolLocked(tok *Token) {
	if tok == nil || tok.Types&WholeVolume == 0 {
		return
	}
	vt := m.byVol[tok.FID.Volume]
	delete(vt, tok.ID)
	if len(vt) == 0 {
		delete(m.byVol, tok.FID.Volume)
	}
}

// addVolLocked indexes a whole-volume token. Caller holds volMu
// exclusively.
func (m *Manager) addVolLocked(tok *Token) {
	if m.byVol[tok.FID.Volume] == nil {
		m.byVol[tok.FID.Volume] = make(map[ID]*Token)
	}
	m.byVol[tok.FID.Volume][tok.ID] = tok
}

// drop removes one token with no locks held on entry, taking volMu only
// for whole-volume tokens (rare) so the ordinary path stays on a single
// shard lock. Returns the dropped token, or nil if it was already gone.
func (m *Manager) drop(id ID) *Token {
	s := m.shardOfID(id)
	s.mu.Lock()
	tok, ok := s.byID[id]
	if !ok {
		s.mu.Unlock()
		return nil
	}
	if tok.Types&WholeVolume == 0 {
		s.dropLocked(id)
		s.mu.Unlock()
		return tok
	}
	s.mu.Unlock()
	// Whole-volume: retake in hierarchy order (volMu before shard.mu) and
	// re-check — the token may have been dropped in the window.
	m.volMu.Lock()
	s.mu.Lock()
	tok = s.dropLocked(id)
	m.removeVolLocked(tok)
	s.mu.Unlock()
	m.volMu.Unlock()
	return tok
}

// NextSerial advances and returns the per-file serialization counter
// (§6.2: the file server marks every reference to a file with a counter so
// clients can reconstruct the server's serialization order).
func (m *Manager) NextSerial(fid fs.FID) uint64 {
	s := m.shardOf(fid)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.serials[fid]++
	return s.serials[fid]
}

// Serial reads the current counter without advancing it.
func (m *Manager) Serial(fid fs.FID) uint64 {
	s := m.shardOf(fid)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.serials[fid]
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Grants:      m.grants.Load(),
		Revocations: m.revocations.Load(),
		Refusals:    m.refusals.Load(),
		Releases:    m.releases.Load(),
		Expired:     m.expired.Load(),
	}
}

// HoldersOf lists the tokens currently granted on fid, for tests and the
// dfsarch tool.
func (m *Manager) HoldersOf(fid fs.FID) []Token {
	s := m.shardOf(fid)
	s.mu.Lock()
	var out []Token
	for _, t := range s.byFile[fid] {
		out = append(out, *t)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// lapsed reports whether a token's lease has run out at now.
func lapsed(t *Token, now int64) bool {
	return t.Expiry != 0 && t.Expiry < now
}

// sweepLocked pops due lease entries and drops the tokens they name.
// Entries are lazily deleted: a renewed or released token leaves a stale
// entry behind, skipped when its recorded expiry no longer matches the
// live token. Whole-volume tokens cannot be dropped under the shard lock
// alone (byVol needs volMu, which orders first); their IDs are returned
// for the caller to finish with no locks held.
func (s *shard) sweepLocked(now int64, expired *obs.Counter) (vol []ID) {
	for len(s.leases) > 0 && s.leases[0].expiry < now {
		e := heap.Pop(&s.leases).(leaseEntry)
		tok, ok := s.byID[e.id]
		if !ok || tok.Expiry != e.expiry {
			continue // already dropped, or renewed past this entry
		}
		if tok.Types&WholeVolume != 0 {
			vol = append(vol, e.id)
			continue
		}
		s.dropLocked(e.id)
		expired.Inc()
	}
	return vol
}

// sweepShard expires due leases on one shard — the incremental
// replacement for the old O(all tokens) pass under the single lock: each
// Acquire/Reclaim sweeps only the shard it touches, and each sweep costs
// O(due entries), not O(resident tokens).
func (m *Manager) sweepShard(s *shard) {
	if m.LeaseDuration == 0 {
		return
	}
	now := m.Clock()
	s.mu.Lock()
	vol := s.sweepLocked(now, m.expired)
	s.mu.Unlock()
	for _, id := range vol {
		if tok := m.dropIfLapsed(id, now); tok != nil {
			m.expired.Inc()
		}
	}
}

// dropIfLapsed drops a token only if its lease is still lapsed at now —
// the whole-volume tail of the sweep, re-checked because the token may
// have been renewed between the shard sweep and this call.
func (m *Manager) dropIfLapsed(id ID, now int64) *Token {
	s := m.shardOfID(id)
	m.volMu.Lock()
	defer m.volMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	tok, ok := s.byID[id]
	if !ok || !lapsed(tok, now) {
		return nil
	}
	s.dropLocked(id)
	m.removeVolLocked(tok)
	return tok
}

// maxRevokeRounds bounds the revoke-and-retry loop in Acquire.
const maxRevokeRounds = 10

// Acquire grants hostID a token of the given types over rng on fid,
// revoking incompatible tokens from other hosts first. It returns the new
// token with the file's serialization counter advanced.
//
// Callers serialize acquires per file through the glue layer's server
// vnode lock (§6.1); Acquire itself is still safe under concurrency and
// retries if new conflicts appear while it was revoking without the lock.
func (m *Manager) Acquire(hostID uint64, fid fs.FID, types Type, rng Range) (Token, error) {
	return m.AcquireTraced(obs.SpanContext{}, hostID, fid, types, rng)
}

// AcquireTraced is Acquire carrying the trace context of the operation
// the grant serves. When a conflicting token's host implements
// TracedHost, the revocation callback continues that trace — the §6.4
// client → server → second-client loop stays attributable to the vnode
// operation that triggered it.
func (m *Manager) AcquireTraced(tc obs.SpanContext, hostID uint64, fid fs.FID, types Type, rng Range) (Token, error) {
	if types == 0 {
		return Token{}, fmt.Errorf("token: empty acquire")
	}
	if m.Gate != nil {
		if err := m.Gate(hostID); err != nil {
			return Token{}, err
		}
	}
	start := time.Now()
	if !m.registered(hostID) {
		return Token{}, fmt.Errorf("%w: host %d", ErrNoHost, hostID)
	}
	s := m.shardOf(fid)
	m.sweepShard(s)

	for round := 0; round < maxRevokeRounds; round++ {
		tok, conflicts := m.tryGrant(s, hostID, fid, types, rng)
		if conflicts == nil {
			m.grantNs.Observe(time.Since(start))
			return tok, nil
		}
		if err := m.revokeConflicts(conflicts, tc); err != nil {
			return Token{}, err
		}
	}
	return Token{}, ErrRetries
}

// tryGrant runs one conflict-check-and-grant round. On success it returns
// the granted token and a nil conflict slice; otherwise the (non-empty)
// conflicts the caller must revoke. All locks are released on return —
// revocation RPCs must never run under them.
func (m *Manager) tryGrant(s *shard, hostID uint64, fid fs.FID, types Type, rng Range) (Token, []Token) {
	if types&WholeVolume != 0 {
		return m.tryGrantVolume(s, hostID, fid, types, rng)
	}
	if types&WriteTypes != 0 {
		return m.tryGrantWrite(s, hostID, fid, types, rng)
	}
	// Read-class: one shard lock, no volume index involved.
	s.mu.Lock()
	conflicts := conflictsOn(s, hostID, fid, types, rng)
	if len(conflicts) > 0 {
		s.mu.Unlock()
		sortByID(conflicts)
		return Token{}, conflicts
	}
	tok := *m.grantLocked(s, hostID, fid, types, rng)
	s.mu.Unlock()
	return tok, nil
}

// tryGrantWrite is the write-class round: volMu is held shared so the
// replica-holder check (§3.8) cannot race a concurrent whole-volume
// acquire, then the shard is locked for the per-file check and the grant.
func (m *Manager) tryGrantWrite(s *shard, hostID uint64, fid fs.FID, types Type, rng Range) (Token, []Token) {
	m.volMu.RLock()
	s.mu.Lock()
	conflicts := conflictsOn(s, hostID, fid, types, rng)
	conflicts = append(conflicts, m.volHoldersLocked(hostID, fid.Volume)...)
	if len(conflicts) > 0 {
		s.mu.Unlock()
		m.volMu.RUnlock()
		sortByID(conflicts)
		return Token{}, conflicts
	}
	tok := *m.grantLocked(s, hostID, fid, types, rng)
	s.mu.Unlock()
	m.volMu.RUnlock()
	return tok, nil
}

// tryGrantVolume is the whole-volume round (§3.8): volMu is held
// exclusively, freezing write-class grants cell-wide, while every shard
// is scanned — one at a time, shard locks never nest — for outstanding
// write-class tokens in the volume. With the scan clean, the grant lands
// on the FID's own shard under the still-held volMu.
func (m *Manager) tryGrantVolume(s *shard, hostID uint64, fid fs.FID, types Type, rng Range) (Token, []Token) {
	m.volMu.Lock()
	now := m.Clock()
	conflicts := m.volumeWritersLocked(hostID, fid.Volume, now)
	s.mu.Lock()
	conflicts = append(conflicts, conflictsOn(s, hostID, fid, types, rng)...)
	if types&WriteTypes != 0 {
		conflicts = append(conflicts, m.volHoldersLocked(hostID, fid.Volume)...)
	}
	if len(conflicts) > 0 {
		s.mu.Unlock()
		m.volMu.Unlock()
		conflicts = dedupByID(conflicts)
		return Token{}, conflicts
	}
	tok := m.grantLocked(s, hostID, fid, types, rng)
	m.addVolLocked(tok)
	granted := *tok
	s.mu.Unlock()
	m.volMu.Unlock()
	return granted, nil
}

// conflictsOn lists tokens on fid incompatible with the proposed grant.
// Caller holds s.mu.
func conflictsOn(s *shard, hostID uint64, fid fs.FID, types Type, rng Range) []Token {
	var out []Token
	for _, t := range s.byFile[fid] {
		if t.HostID == hostID {
			continue // a host never conflicts with itself (§5.1)
		}
		if !Compatible(types, rng, t.Types, t.Range) {
			out = append(out, *t)
		}
	}
	return out
}

// volHoldersLocked lists whole-volume tokens other hosts hold on vol —
// they conflict with any write-class grant in the volume (§3.8: the
// replica holder must learn of changes). Caller holds volMu (shared is
// enough).
func (m *Manager) volHoldersLocked(hostID uint64, vol fs.VolumeID) []Token {
	var out []Token
	for _, t := range m.byVol[vol] {
		if t.HostID != hostID {
			out = append(out, *t)
		}
	}
	return out
}

// volumeWritersLocked scans every shard for live write-class tokens in
// vol held by other hosts — what a whole-volume acquire must revoke.
// Caller holds volMu exclusively, which freezes write-class grants, so
// visiting shards one at a time cannot miss a concurrent writer. Tokens
// whose lease already lapsed are skipped rather than revoked (their
// shards just have not swept them yet).
func (m *Manager) volumeWritersLocked(hostID uint64, vol fs.VolumeID, now int64) []Token {
	var out []Token
	for _, s := range m.shards {
		s.mu.Lock()
		for vfid, ft := range s.byFile {
			if vfid.Volume != vol {
				continue
			}
			for _, t := range ft {
				if t.HostID != hostID && t.Types&WriteTypes != 0 && !lapsed(t, now) {
					out = append(out, *t)
				}
			}
		}
		s.mu.Unlock()
	}
	return out
}

func sortByID(toks []Token) {
	sort.Slice(toks, func(i, j int) bool { return toks[i].ID < toks[j].ID })
}

// dedupByID sorts conflicts by ID and removes duplicates (a token can
// surface from both the per-file check and the volume scan).
func dedupByID(toks []Token) []Token {
	sortByID(toks)
	out := toks[:0]
	for i, t := range toks {
		if i > 0 && t.ID == out[len(out)-1].ID {
			continue
		}
		out = append(out, t)
	}
	return out
}

// revokeConflicts runs one revocation pass over the conflict set with no
// manager locks held: the revoke procedure makes RPCs and may call back
// into the manager (store-backs, token returns). A refusal fails the
// acquire with ErrConflict; a dead host forfeits its token.
func (m *Manager) revokeConflicts(conflicts []Token, tc obs.SpanContext) error {
	for _, c := range conflicts {
		host := m.hostOf(c.HostID)
		if host == nil {
			// Host vanished; drop its token.
			m.drop(c.ID)
			continue
		}
		returned, err := m.revoke(host, c, tc)
		m.revocations.Inc()
		switch {
		case err != nil:
			// A failed revocation (dead client) forfeits the token.
			m.drop(c.ID)
		case returned:
			m.drop(c.ID)
		default:
			m.refusals.Inc()
			return fmt.Errorf("%w: %v held by host %d",
				ErrConflict, c.Types, c.HostID)
		}
	}
	return nil
}

// revoke runs one revocation round-trip, timing it and threading the
// trace context through when the host supports it.
func (m *Manager) revoke(host Host, c Token, tc obs.SpanContext) (bool, error) {
	start := time.Now()
	defer func() { m.revokeRTT.Observe(time.Since(start)) }()
	if th, ok := host.(TracedHost); ok && !tc.IsZero() {
		return th.RevokeTraced(c, tc)
	}
	return host.Revoke(c)
}

// grantLocked mints a token on s. Caller holds s.mu; for whole-volume
// grants the caller also holds volMu exclusively and indexes the returned
// token with addVolLocked.
func (m *Manager) grantLocked(s *shard, hostID uint64, fid fs.FID, types Type, rng Range) *Token {
	s.nextSeq++
	s.serials[fid]++
	tok := &Token{
		ID:     ID((s.nextSeq-1)*uint64(s.count)) + ID(s.idx) + 1,
		FID:    fid,
		Types:  types,
		Range:  rng,
		HostID: hostID,
		Serial: s.serials[fid],
	}
	if m.LeaseDuration > 0 {
		tok.Expiry = m.Clock() + m.LeaseDuration
		heap.Push(&s.leases, leaseEntry{expiry: tok.Expiry, id: tok.ID})
	}
	s.byID[tok.ID] = tok
	if s.byFile[fid] == nil {
		s.byFile[fid] = make(map[ID]*Token)
	}
	s.byFile[fid][tok.ID] = tok
	m.grants.Inc()
	return tok
}

// Reclaim re-establishes a token the claiming host held before the
// server restarted (token state recovery). The claim is validated against
// the rebuilt state: if it conflicts with tokens other hosts have already
// re-established, the first claimant has won and this one is rejected
// with fs.ErrReclaim — the caller must discard the cache the token
// covered. On success the file's serialization counter is advanced past
// the claimed stamp before the replacement is granted, so every
// post-recovery stamp orders after everything the claimant saw before the
// crash (§6.2's ordering survives the restart).
//
// The check and the grant happen atomically under the claim FID's shard
// lock (plus volMu for write-class and whole-volume claims), which is
// what makes first-reclaimer-wins hold under a thundering herd: two
// conflicting claims on one file serialize on one shard, and the loser
// sees the winner's state.
//
// Reclaim never revokes: during the grace window conflicts can only come
// from other reclaims, and resolving those by revocation would ask a
// client to act on tokens it is in the middle of re-establishing.
func (m *Manager) Reclaim(hostID uint64, claim Token) (Token, error) {
	if claim.Types == 0 {
		return Token{}, fmt.Errorf("token: empty reclaim")
	}
	if !m.registered(hostID) {
		return Token{}, fmt.Errorf("%w: host %d", ErrNoHost, hostID)
	}
	s := m.shardOf(claim.FID)
	m.sweepShard(s)
	if claim.Types&WholeVolume != 0 {
		return m.reclaimVolume(s, hostID, claim)
	}
	if claim.Types&WriteTypes != 0 {
		return m.reclaimWrite(s, hostID, claim)
	}
	return m.reclaimRead(s, hostID, claim)
}

// reclaimRead handles read-class claims: one shard lock, no volume index.
func (m *Manager) reclaimRead(s *shard, hostID uint64, claim Token) (Token, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	conflicts := conflictsOn(s, hostID, claim.FID, claim.Types, claim.Range)
	if len(conflicts) > 0 {
		sortByID(conflicts)
		c := conflicts[0]
		return Token{}, fmt.Errorf("%w: %v over %v on %v already re-established by host %d",
			fs.ErrReclaim, c.Types, c.Range, claim.FID, c.HostID)
	}
	if s.serials[claim.FID] < claim.Serial {
		s.serials[claim.FID] = claim.Serial
	}
	return *m.grantLocked(s, hostID, claim.FID, claim.Types, claim.Range), nil
}

// reclaimWrite handles write-class claims under the same shared-volMu
// protocol as tryGrantWrite, so a re-established replica token cannot be
// missed.
func (m *Manager) reclaimWrite(s *shard, hostID uint64, claim Token) (Token, error) {
	m.volMu.RLock()
	defer m.volMu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	conflicts := conflictsOn(s, hostID, claim.FID, claim.Types, claim.Range)
	conflicts = append(conflicts, m.volHoldersLocked(hostID, claim.FID.Volume)...)
	if len(conflicts) > 0 {
		sortByID(conflicts)
		c := conflicts[0]
		return Token{}, fmt.Errorf("%w: %v over %v on %v already re-established by host %d",
			fs.ErrReclaim, c.Types, c.Range, claim.FID, c.HostID)
	}
	if s.serials[claim.FID] < claim.Serial {
		s.serials[claim.FID] = claim.Serial
	}
	return *m.grantLocked(s, hostID, claim.FID, claim.Types, claim.Range), nil
}

// reclaimVolume is Reclaim for whole-volume claims: the same exclusive
// volMu protocol as tryGrantVolume, without revocation.
func (m *Manager) reclaimVolume(s *shard, hostID uint64, claim Token) (Token, error) {
	m.volMu.Lock()
	defer m.volMu.Unlock()
	now := m.Clock()
	conflicts := m.volumeWritersLocked(hostID, claim.FID.Volume, now)
	s.mu.Lock()
	defer s.mu.Unlock()
	conflicts = append(conflicts, conflictsOn(s, hostID, claim.FID, claim.Types, claim.Range)...)
	if claim.Types&WriteTypes != 0 {
		conflicts = append(conflicts, m.volHoldersLocked(hostID, claim.FID.Volume)...)
	}
	if len(conflicts) > 0 {
		conflicts = dedupByID(conflicts)
		c := conflicts[0]
		return Token{}, fmt.Errorf("%w: %v over %v on %v already re-established by host %d",
			fs.ErrReclaim, c.Types, c.Range, claim.FID, c.HostID)
	}
	if s.serials[claim.FID] < claim.Serial {
		s.serials[claim.FID] = claim.Serial
	}
	tok := m.grantLocked(s, hostID, claim.FID, claim.Types, claim.Range)
	m.addVolLocked(tok)
	return *tok, nil
}

// Release returns a token voluntarily (the end of §5.2's
// acquire-operate-release protocol, or a client answering a revocation).
func (m *Manager) Release(id ID) error {
	if m.drop(id) == nil {
		return fmt.Errorf("%w: %d", ErrNoToken, id)
	}
	m.releases.Inc()
	return nil
}

// Renew extends a token's lease.
func (m *Manager) Renew(id ID) error {
	s := m.shardOfID(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	tok, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoToken, id)
	}
	if m.LeaseDuration > 0 {
		tok.Expiry = m.Clock() + m.LeaseDuration
		heap.Push(&s.leases, leaseEntry{expiry: tok.Expiry, id: tok.ID})
	}
	return nil
}
