// Package token implements the DEcorum token manager (§3.1, §5 of the
// paper): the server-side registry of guarantees made to clients about
// what operations they may perform locally on cached file state.
//
// Token types (§5.2):
//
//   - Data read/write tokens cover a byte range of file data. A read data
//     token lets the holder use cached data without revalidation RPCs; a
//     write data token lets it update cached data without writing through.
//   - Status read/write tokens cover the file's status (attributes).
//   - Lock read/write tokens cover byte ranges for file locking.
//   - Open tokens cover open modes: normal read, normal write, execute,
//     shared read, exclusive write, with the compatibility matrix of
//     Figure 3 (reconstructed in DESIGN.md).
//   - A whole-volume token (§3.8) lets a replication server treat its
//     replica as valid until anything in the volume changes.
//
// Tokens of different types are always compatible ("they refer to separate
// components of files"); same-type conflicts follow the rules above.
// Before granting a token, the manager revokes incompatible ones by
// calling the virtual revoke procedure of the host that holds them (§5.1:
// clients register an afs_host object with a revoke procedure). A host may
// decline to return a lock or open token — the normal action when it has
// the file locked or open (§5.3) — in which case the grant fails with
// ErrConflict.
package token

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"decorum/internal/fs"
	"decorum/internal/obs"
)

// Type is a bitmask of token types. A single token may carry several types
// (e.g. status read + data read granted together by a fetch).
type Type uint32

// Token types.
const (
	DataRead Type = 1 << iota
	DataWrite
	StatusRead
	StatusWrite
	LockRead
	LockWrite
	OpenRead
	OpenWrite
	OpenExecute
	OpenShared
	OpenExclusive
	WholeVolume
)

// Groups of related types.
const (
	DataTypes   = DataRead | DataWrite
	StatusTypes = StatusRead | StatusWrite
	LockTypes   = LockRead | LockWrite
	OpenTypes   = OpenRead | OpenWrite | OpenExecute | OpenShared | OpenExclusive
	WriteTypes  = DataWrite | StatusWrite | OpenWrite | OpenExclusive
	AllTypes    = DataTypes | StatusTypes | LockTypes | OpenTypes | WholeVolume
)

var typeNames = []struct {
	t Type
	s string
}{
	{DataRead, "data-read"}, {DataWrite, "data-write"},
	{StatusRead, "status-read"}, {StatusWrite, "status-write"},
	{LockRead, "lock-read"}, {LockWrite, "lock-write"},
	{OpenRead, "open-read"}, {OpenWrite, "open-write"},
	{OpenExecute, "open-execute"}, {OpenShared, "open-shared"},
	{OpenExclusive, "open-exclusive"}, {WholeVolume, "whole-volume"},
}

func (t Type) String() string {
	var parts []string
	for _, n := range typeNames {
		if t&n.t != 0 {
			parts = append(parts, n.s)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// Range is a half-open byte range [Start, End). WholeFile covers
// everything.
type Range struct {
	Start int64
	End   int64
}

// WholeFile is the range covering any possible byte.
var WholeFile = Range{0, math.MaxInt64}

// Overlaps reports whether two ranges share any byte.
func (r Range) Overlaps(o Range) bool { return r.Start < o.End && o.Start < r.End }

// Contains reports whether r covers all of o.
func (r Range) Contains(o Range) bool { return r.Start <= o.Start && o.End <= r.End }

func (r Range) String() string {
	if r == WholeFile {
		return "[*]"
	}
	return fmt.Sprintf("[%d,%d)", r.Start, r.End)
}

// openCompat is the Figure 3 compatibility matrix, reconstructed from the
// paper's §5.4 semantics (see DESIGN.md): rows/cols are open subtypes;
// true = the two opens may coexist on different hosts.
var openCompat = map[Type]map[Type]bool{
	OpenRead: {
		OpenRead: true, OpenWrite: true, OpenExecute: true, OpenShared: true, OpenExclusive: false,
	},
	OpenWrite: {
		OpenRead: true, OpenWrite: true, OpenExecute: false, OpenShared: true, OpenExclusive: false,
	},
	OpenExecute: {
		OpenRead: true, OpenWrite: false, OpenExecute: true, OpenShared: true, OpenExclusive: false,
	},
	OpenShared: {
		OpenRead: true, OpenWrite: true, OpenExecute: true, OpenShared: true, OpenExclusive: false,
	},
	OpenExclusive: {
		OpenRead: false, OpenWrite: false, OpenExecute: false, OpenShared: false, OpenExclusive: false,
	},
}

// OpenSubtypes lists the open-token subtypes in matrix order.
var OpenSubtypes = []Type{OpenRead, OpenWrite, OpenExecute, OpenShared, OpenExclusive}

// OpenCompatible reports Figure 3 for two single open subtypes.
func OpenCompatible(a, b Type) bool { return openCompat[a][b] }

// Compatible reports whether a token of types ta over range ra coexists
// with one of types tb over rb (held by a different host). The rule set
// (§5.2):
//
//   - different types never conflict;
//   - data: read/write and write/write conflict when ranges overlap;
//   - status: any write conflicts with anything;
//   - lock: read/write and write/write conflict when ranges overlap;
//   - open: the Figure 3 matrix;
//   - whole-volume conflicts with any write-class type (handled at the
//     volume level by the manager).
func Compatible(ta Type, ra Range, tb Type, rb Range) bool {
	// Data.
	if ta&DataWrite != 0 && tb&DataTypes != 0 && ra.Overlaps(rb) {
		return false
	}
	if tb&DataWrite != 0 && ta&DataTypes != 0 && ra.Overlaps(rb) {
		return false
	}
	// Status.
	if ta&StatusWrite != 0 && tb&StatusTypes != 0 {
		return false
	}
	if tb&StatusWrite != 0 && ta&StatusTypes != 0 {
		return false
	}
	// Locks.
	if ta&LockWrite != 0 && tb&LockTypes != 0 && ra.Overlaps(rb) {
		return false
	}
	if tb&LockWrite != 0 && ta&LockTypes != 0 && ra.Overlaps(rb) {
		return false
	}
	// Opens: every subtype pair present must be pairwise compatible.
	for _, sa := range OpenSubtypes {
		if ta&sa == 0 {
			continue
		}
		for _, sb := range OpenSubtypes {
			if tb&sb == 0 {
				continue
			}
			if !openCompat[sa][sb] {
				return false
			}
		}
	}
	return true
}

// ID names one granted token.
type ID uint64

// Token is one guarantee held by a host.
type Token struct {
	ID     ID
	FID    fs.FID
	Types  Type
	Range  Range
	HostID uint64
	// Serial is the per-file serialization counter stamped when the
	// token was granted (§6.2).
	Serial uint64
	// Expiry is the lease end in clock units (0 = no lease).
	Expiry int64
}

// Host is the registered client of the token manager — the paper's
// afs_host with its virtual revoke procedure. Implementations include the
// protocol exporter's per-client connection records and the glue layer's
// local host.
type Host interface {
	// HostID returns the host's stable identity.
	HostID() uint64
	// Revoke asks the host to stop using tok and return it. For write
	// tokens the host stores back dirty state before returning. The
	// return value reports whether the token was actually returned: a
	// host may keep lock/open tokens it is still using (§5.3).
	Revoke(tok Token) (returned bool, err error)
}

// TracedHost is a Host whose revoke procedure can carry a trace context
// across the wire, so the revocation callback issued while serving one
// client's acquire is attributable to that client's operation. Hosts that
// implement it receive the acquirer's context; plain Hosts still work.
type TracedHost interface {
	Host
	RevokeTraced(tok Token, tc obs.SpanContext) (returned bool, err error)
}

// Errors.
var (
	ErrConflict = errors.New("token: conflicting token not returned")
	ErrNoHost   = errors.New("token: host not registered")
	ErrNoToken  = errors.New("token: no such token")
	ErrRetries  = errors.New("token: too many revocation rounds")
)

// Stats counts manager activity, for the experiments.
type Stats struct {
	Grants      uint64
	Revocations uint64
	Refusals    uint64
	Releases    uint64
	Expired     uint64
}

// Manager is one server's token manager.
type Manager struct {
	// Clock supplies lease timestamps (settable in tests).
	Clock func() int64
	// LeaseDuration is added to Clock() for new tokens (0 = no leases).
	LeaseDuration int64
	// Gate, when set, is consulted with the acquiring host's ID before
	// every ordinary grant; a non-nil error aborts the acquire without
	// revoking anything. The recovery guard installs itself here so a
	// restarted server answers grants with fs.ErrGrace until the host has
	// reclaimed (token state recovery). Reclaim bypasses the gate. Set
	// before the manager serves traffic.
	Gate func(hostID uint64) error

	mu      sync.Mutex
	hosts   map[uint64]Host               // guarded by mu
	byFile  map[fs.FID]map[ID]*Token      // guarded by mu
	byVol   map[fs.VolumeID]map[ID]*Token // guarded by mu (whole-volume tokens)
	byID    map[ID]*Token                 // guarded by mu
	serials map[fs.FID]uint64             // guarded by mu
	nextID  ID                            // guarded by mu

	// Activity metrics (obs primitives: atomic, safe with or without mu).
	// Always allocated, so Stats() works whether or not the manager was
	// Instrumented into a registry.
	grants      *obs.Counter
	revocations *obs.Counter
	refusals    *obs.Counter
	releases    *obs.Counter
	expired     *obs.Counter
	grantNs     *obs.Histogram // whole Acquire, incl. revocation rounds
	revokeRTT   *obs.Histogram // one host.Revoke round-trip
}

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{
		Clock:       func() int64 { return 0 },
		hosts:       make(map[uint64]Host),
		byFile:      make(map[fs.FID]map[ID]*Token),
		byVol:       make(map[fs.VolumeID]map[ID]*Token),
		byID:        make(map[ID]*Token),
		serials:     make(map[fs.FID]uint64),
		grants:      obs.NewCounter(),
		revocations: obs.NewCounter(),
		refusals:    obs.NewCounter(),
		releases:    obs.NewCounter(),
		expired:     obs.NewCounter(),
		grantNs:     obs.NewHistogram(),
		revokeRTT:   obs.NewHistogram(),
	}
}

// Instrument attaches the manager's metrics to reg under the "token."
// prefix. The counters are the same cells Stats() reads, so the registry
// and the accessor always agree.
func (m *Manager) Instrument(reg *obs.Registry) {
	reg.AttachCounter("token.grants", m.grants)
	reg.AttachCounter("token.revocations", m.revocations)
	reg.AttachCounter("token.refusals", m.refusals)
	reg.AttachCounter("token.releases", m.releases)
	reg.AttachCounter("token.expired", m.expired)
	reg.AttachHistogram("token.grant_ns", m.grantNs)
	reg.AttachHistogram("token.revoke_rtt_ns", m.revokeRTT)
}

// Register adds a host; its tokens can now be granted and revoked.
func (m *Manager) Register(h Host) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hosts[h.HostID()] = h
}

// Unregister removes a host and discards every token it held (a crashed
// client's write-backs are lost, exactly as in the paper's model).
func (m *Manager) Unregister(hostID uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.hosts, hostID)
	for id, tok := range m.byID {
		if tok.HostID == hostID {
			m.dropLocked(id)
		}
	}
}

func (m *Manager) dropLocked(id ID) {
	tok, ok := m.byID[id]
	if !ok {
		return
	}
	delete(m.byID, id)
	if ft, ok := m.byFile[tok.FID]; ok {
		delete(ft, id)
		if len(ft) == 0 {
			delete(m.byFile, tok.FID)
		}
	}
	if vt, ok := m.byVol[tok.FID.Volume]; ok {
		delete(vt, id)
		if len(vt) == 0 {
			delete(m.byVol, tok.FID.Volume)
		}
	}
}

// NextSerial advances and returns the per-file serialization counter
// (§6.2: the file server marks every reference to a file with a counter so
// clients can reconstruct the server's serialization order).
func (m *Manager) NextSerial(fid fs.FID) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.serials[fid]++
	return m.serials[fid]
}

// Serial reads the current counter without advancing it.
func (m *Manager) Serial(fid fs.FID) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.serials[fid]
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Grants:      m.grants.Load(),
		Revocations: m.revocations.Load(),
		Refusals:    m.refusals.Load(),
		Releases:    m.releases.Load(),
		Expired:     m.expired.Load(),
	}
}

// HoldersOf lists the tokens currently granted on fid, for tests and the
// dfsarch tool.
func (m *Manager) HoldersOf(fid fs.FID) []Token {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Token
	for _, t := range m.byFile[fid] {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// expireLocked drops leased tokens whose lease has passed.
func (m *Manager) expireLocked(now int64) {
	if m.LeaseDuration == 0 {
		return
	}
	for id, tok := range m.byID {
		if tok.Expiry != 0 && tok.Expiry < now {
			m.dropLocked(id)
			m.expired.Inc()
		}
	}
}

// maxRevokeRounds bounds the revoke-and-retry loop in Acquire.
const maxRevokeRounds = 10

// Acquire grants hostID a token of the given types over rng on fid,
// revoking incompatible tokens from other hosts first. It returns the new
// token with the file's serialization counter advanced.
//
// Callers serialize acquires per file through the glue layer's server
// vnode lock (§6.1); Acquire itself is still safe under concurrency and
// retries if new conflicts appear while it was revoking without the lock.
func (m *Manager) Acquire(hostID uint64, fid fs.FID, types Type, rng Range) (Token, error) {
	return m.AcquireTraced(obs.SpanContext{}, hostID, fid, types, rng)
}

// AcquireTraced is Acquire carrying the trace context of the operation
// the grant serves. When a conflicting token's host implements
// TracedHost, the revocation callback continues that trace — the §6.4
// client → server → second-client loop stays attributable to the vnode
// operation that triggered it.
func (m *Manager) AcquireTraced(tc obs.SpanContext, hostID uint64, fid fs.FID, types Type, rng Range) (Token, error) {
	if types == 0 {
		return Token{}, fmt.Errorf("token: empty acquire")
	}
	if m.Gate != nil {
		if err := m.Gate(hostID); err != nil {
			return Token{}, err
		}
	}
	start := time.Now()
	m.mu.Lock()
	if _, ok := m.hosts[hostID]; !ok {
		m.mu.Unlock()
		return Token{}, fmt.Errorf("%w: host %d", ErrNoHost, hostID)
	}
	m.expireLocked(m.Clock())
	m.mu.Unlock()

	for round := 0; round < maxRevokeRounds; round++ {
		m.mu.Lock()
		conflicts := m.conflictsLocked(hostID, fid, types, rng)
		if len(conflicts) == 0 {
			tok := m.grantLocked(hostID, fid, types, rng)
			m.mu.Unlock()
			m.grantNs.Observe(time.Since(start))
			return tok, nil
		}
		m.mu.Unlock()
		// Revoke outside the lock: the revoke procedure makes RPCs and
		// may call back into the manager (store-backs, token returns).
		for _, c := range conflicts {
			host := m.hostOf(c.HostID)
			if host == nil {
				// Host vanished; drop its token.
				m.mu.Lock()
				m.dropLocked(c.ID)
				m.mu.Unlock()
				continue
			}
			returned, err := m.revoke(host, c, tc)
			m.mu.Lock()
			m.revocations.Inc()
			if err != nil {
				// A failed revocation (dead client) forfeits the token.
				m.dropLocked(c.ID)
			} else if returned {
				m.dropLocked(c.ID)
			} else {
				m.refusals.Inc()
				m.mu.Unlock()
				return Token{}, fmt.Errorf("%w: %v held by host %d",
					ErrConflict, c.Types, c.HostID)
			}
			m.mu.Unlock()
		}
	}
	return Token{}, ErrRetries
}

// revoke runs one revocation round-trip, timing it and threading the
// trace context through when the host supports it.
func (m *Manager) revoke(host Host, c Token, tc obs.SpanContext) (bool, error) {
	start := time.Now()
	defer func() { m.revokeRTT.Observe(time.Since(start)) }()
	if th, ok := host.(TracedHost); ok && !tc.IsZero() {
		return th.RevokeTraced(c, tc)
	}
	return host.Revoke(c)
}

func (m *Manager) hostOf(id uint64) Host {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hosts[id]
}

// conflictsLocked lists tokens incompatible with the proposed grant.
func (m *Manager) conflictsLocked(hostID uint64, fid fs.FID, types Type, rng Range) []Token {
	var out []Token
	for _, t := range m.byFile[fid] {
		if t.HostID == hostID {
			continue // a host never conflicts with itself (§5.1)
		}
		if !Compatible(types, rng, t.Types, t.Range) {
			out = append(out, *t)
		}
	}
	// Whole-volume tokens conflict with any write-class grant in the
	// volume (§3.8: the replica holder must learn of changes).
	if types&WriteTypes != 0 {
		for _, t := range m.byVol[fid.Volume] {
			if t.HostID != hostID {
				out = append(out, *t)
			}
		}
	}
	// Conversely a whole-volume acquire conflicts with outstanding
	// write-class tokens anywhere in the volume.
	if types&WholeVolume != 0 {
		for vfid, ft := range m.byFile {
			if vfid.Volume != fid.Volume {
				continue
			}
			for _, t := range ft {
				if t.HostID != hostID && t.Types&WriteTypes != 0 {
					out = append(out, *t)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (m *Manager) grantLocked(hostID uint64, fid fs.FID, types Type, rng Range) Token {
	m.nextID++
	m.serials[fid]++
	tok := Token{
		ID:     m.nextID,
		FID:    fid,
		Types:  types,
		Range:  rng,
		HostID: hostID,
		Serial: m.serials[fid],
	}
	if m.LeaseDuration > 0 {
		tok.Expiry = m.Clock() + m.LeaseDuration
	}
	p := &tok
	m.byID[tok.ID] = p
	if types&WholeVolume != 0 {
		if m.byVol[fid.Volume] == nil {
			m.byVol[fid.Volume] = make(map[ID]*Token)
		}
		m.byVol[fid.Volume][tok.ID] = p
	}
	if m.byFile[fid] == nil {
		m.byFile[fid] = make(map[ID]*Token)
	}
	m.byFile[fid][tok.ID] = p
	m.grants.Inc()
	return tok
}

// Reclaim re-establishes a token the claiming host held before the
// server restarted (token state recovery). The claim is validated against
// the rebuilt state: if it conflicts with tokens other hosts have already
// re-established, the first claimant has won and this one is rejected
// with fs.ErrReclaim — the caller must discard the cache the token
// covered. On success the file's serialization counter is advanced past
// the claimed stamp before the replacement is granted, so every
// post-recovery stamp orders after everything the claimant saw before the
// crash (§6.2's ordering survives the restart).
//
// Reclaim never revokes: during the grace window conflicts can only come
// from other reclaims, and resolving those by revocation would ask a
// client to act on tokens it is in the middle of re-establishing.
func (m *Manager) Reclaim(hostID uint64, claim Token) (Token, error) {
	if claim.Types == 0 {
		return Token{}, fmt.Errorf("token: empty reclaim")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.hosts[hostID]; !ok {
		return Token{}, fmt.Errorf("%w: host %d", ErrNoHost, hostID)
	}
	m.expireLocked(m.Clock())
	if conflicts := m.conflictsLocked(hostID, claim.FID, claim.Types, claim.Range); len(conflicts) > 0 {
		c := conflicts[0]
		return Token{}, fmt.Errorf("%w: %v over %v on %v already re-established by host %d",
			fs.ErrReclaim, c.Types, c.Range, claim.FID, c.HostID)
	}
	if m.serials[claim.FID] < claim.Serial {
		m.serials[claim.FID] = claim.Serial
	}
	return m.grantLocked(hostID, claim.FID, claim.Types, claim.Range), nil
}

// Release returns a token voluntarily (the end of §5.2's
// acquire-operate-release protocol, or a client answering a revocation).
func (m *Manager) Release(id ID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.byID[id]; !ok {
		return fmt.Errorf("%w: %d", ErrNoToken, id)
	}
	m.dropLocked(id)
	m.releases.Inc()
	return nil
}

// Renew extends a token's lease.
func (m *Manager) Renew(id ID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	tok, ok := m.byID[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoToken, id)
	}
	if m.LeaseDuration > 0 {
		tok.Expiry = m.Clock() + m.LeaseDuration
	}
	return nil
}
