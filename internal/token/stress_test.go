package token

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"decorum/internal/fs"
	"decorum/internal/recovery"
)

// TestShardStressStormAndReclaimHerd runs a revocation storm and a
// post-restart reclaim thundering herd against one sharded manager at
// the same time — the combination a cell sees when it restarts under
// load. Run under -race (make race). It asserts the two invariants the
// sharding must not bend:
//
//   - serials never regress: every grant on a file carries a unique
//     serial, a reclaim's replacement token orders strictly after the
//     claimed stamp, and the final counter is at or past everything
//     observed;
//   - no grant escapes the grace gate: a host that has not reclaimed
//     gets fs.ErrGrace for every ordinary acquire for as long as the
//     grace window is open.
func TestShardStressStormAndReclaimHerd(t *testing.T) {
	const (
		hosts     = 32
		stormFIDs = 8
		herdFIDs  = 64
		perHost   = 16
	)
	guard := recovery.NewGuard(2, time.Hour) // grace ends only when we say so
	m := NewManager()
	m.Gate = guard.GrantGate
	for i := 1; i <= hosts; i++ {
		m.Register(&fakeHost{id: uint64(i)})
	}
	// The first half of the hosts are "recovered" from the start and
	// drive the storm; the rest recover mid-run inside the herd.
	for i := 1; i <= hosts/2; i++ {
		guard.MarkRecovered(uint64(i))
	}

	// seen records every granted (fid, serial) pair; one slot per FID so
	// the check itself cannot serialize the shards.
	type fidRecord struct {
		mu      sync.Mutex
		serials map[uint64]bool
		max     uint64
	}
	records := make(map[fs.FID]*fidRecord)
	fidAt := func(i int) fs.FID { return fs.FID{Volume: 7, Vnode: uint64(i), Uniq: 1} }
	for i := 0; i < herdFIDs; i++ {
		records[fidAt(i)] = &fidRecord{serials: make(map[uint64]bool)}
	}
	note := func(t *testing.T, tok Token) {
		rec := records[tok.FID]
		rec.mu.Lock()
		defer rec.mu.Unlock()
		if rec.serials[tok.Serial] {
			t.Errorf("duplicate serial %d granted on %v", tok.Serial, tok.FID)
		}
		rec.serials[tok.Serial] = true
		if tok.Serial > rec.max {
			rec.max = tok.Serial
		}
	}

	var (
		wg           sync.WaitGroup
		stop         atomic.Bool
		stormGrants  atomic.Uint64
		herdAccepts  atomic.Uint64
		herdRejects  atomic.Uint64
		graceRejects atomic.Uint64
	)

	// Revocation storm: recovered hosts fight over write tokens on a
	// small shared FID set (all herdFIDs indexes < stormFIDs), revoking
	// each other continuously.
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			host := uint64(g%(hosts/2) + 1)
			for i := 0; !stop.Load(); i++ {
				fid := fidAt(i % stormFIDs)
				tok, err := m.Acquire(host, fid, DataWrite, WholeFile)
				switch {
				case err == nil:
					note(t, tok)
					stormGrants.Add(1)
					if i%3 == 0 {
						m.Release(tok.ID)
					}
				case errors.Is(err, ErrRetries) || errors.Is(err, ErrConflict):
					// Both are legal outcomes of a storm.
				default:
					t.Errorf("storm acquire: %v", err)
					return
				}
			}
		}(g)
	}

	// Grace probers: hosts that never recover must be refused with
	// fs.ErrGrace every single time while the window is open.
	proberHost := uint64(hosts) // reserved: never marked recovered
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				_, err := m.Acquire(proberHost, fidAt(i%herdFIDs), DataRead, WholeFile)
				if !errors.Is(err, fs.ErrGrace) {
					t.Errorf("unrecovered host got past the gate: err=%v", err)
					return
				}
				graceRejects.Add(1)
			}
		}()
	}

	// Reclaim thundering herd: the unrecovered hosts (minus the reserved
	// prober) all reclaim at once. Claims deliberately overlap — two
	// hosts claim write tokens on the same files — so first-reclaimer-
	// wins has to arbitrate across every shard.
	for h := hosts/2 + 1; h < hosts; h++ {
		wg.Add(1)
		go func(host uint64) {
			defer wg.Done()
			for i := 0; i < perHost; i++ {
				// Overlapping FID space: consecutive hosts collide.
				fid := fidAt(stormFIDs + (int(host)*perHost+i)%(herdFIDs-stormFIDs))
				claimSerial := uint64(1000 + i)
				tok, err := m.Reclaim(host, Token{
					FID: fid, Types: DataWrite, Range: WholeFile, Serial: claimSerial,
				})
				switch {
				case err == nil:
					if tok.Serial <= claimSerial {
						t.Errorf("reclaim serial regressed: granted %d for claim %d on %v",
							tok.Serial, claimSerial, fid)
					}
					note(t, tok)
					herdAccepts.Add(1)
				case errors.Is(err, fs.ErrReclaim):
					herdRejects.Add(1) // lost to the first reclaimer
				default:
					t.Errorf("reclaim: %v", err)
					return
				}
			}
			guard.MarkRecovered(host)
			guard.NoteReclaim(perHost, 0)
			// Once recovered, ordinary acquires must flow again.
			tok, err := m.Acquire(host, fidAt(int(host)%herdFIDs), StatusRead, WholeFile)
			if err != nil && !errors.Is(err, ErrRetries) && !errors.Is(err, ErrConflict) {
				t.Errorf("post-reclaim acquire for host %d: %v", host, err)
			}
			if err == nil {
				note(t, tok)
			}
		}(uint64(h))
	}

	time.Sleep(150 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if n := stormGrants.Load(); n == 0 {
		t.Error("storm made no grants")
	}
	if n := herdAccepts.Load(); n == 0 {
		t.Error("herd re-established no tokens")
	}
	if n := graceRejects.Load(); n == 0 {
		t.Error("grace prober never ran")
	}
	// The final counters must sit at or past every serial ever granted.
	for fid, rec := range records {
		rec.mu.Lock()
		max := rec.max
		rec.mu.Unlock()
		if got := m.Serial(fid); got < max {
			t.Errorf("serial regressed on %v: counter %d < granted %d", fid, got, max)
		}
	}
	t.Logf("storm grants=%d herd accepts=%d rejects=%d grace rejects=%d",
		stormGrants.Load(), herdAccepts.Load(), herdRejects.Load(), graceRejects.Load())
}
