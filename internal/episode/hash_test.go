package episode

import (
	"bytes"
	"testing"

	"decorum/internal/anode"
	"decorum/internal/fs"
	"decorum/internal/integrity"
	"decorum/internal/vfs"
)

func hashFile(t *testing.T, fsys vfs.FileSystem, name string, data []byte) vfs.Vnode {
	t.Helper()
	root, err := fsys.Root()
	if err != nil {
		t.Fatal(err)
	}
	f, err := root.Create(su(), name, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(su(), data, 0); err != nil {
		t.Fatal(err)
	}
	return f
}

func wantLeaves(data []byte) []integrity.Hash {
	leaves := make([]integrity.Hash, integrity.LeafCount(int64(len(data))))
	for i := range leaves {
		lo := i * integrity.LeafSize
		hi := lo + integrity.ClipLeaf(int64(len(data)), int64(i))
		leaves[i] = integrity.LeafHash(data[lo:hi])
	}
	return leaves
}

func TestWriteMaintainsHashTree(t *testing.T) {
	agg := newAgg(t)
	fsys, _ := newVol(t, agg, "v")
	data := bytes.Repeat([]byte("decorum!"), (integrity.LeafSize+5000)/8)
	f := hashFile(t, fsys, "f", data)
	hv := f.(vfs.HashVnode)

	root, leaves, err := hv.HashRoot(su())
	if err != nil {
		t.Fatal(err)
	}
	want := wantLeaves(data)
	if leaves != int64(len(want)) {
		t.Fatalf("leaf count %d, want %d", leaves, len(want))
	}
	if root != [32]byte(integrity.Root(want)) {
		t.Fatal("root does not match independently computed tree")
	}
	for i := range want {
		h, ok, err := hv.ChunkHash(su(), int64(i))
		if err != nil || !ok {
			t.Fatalf("ChunkHash(%d): ok=%v err=%v", i, ok, err)
		}
		if h != [32]byte(want[i]) {
			t.Fatalf("leaf %d mismatch", i)
		}
	}

	// Overwrite inside chunk 1: its leaf (and the root) must move, chunk
	// 0's leaf must not.
	if _, err := f.Write(su(), []byte("XYZZY"), integrity.LeafSize+17); err != nil {
		t.Fatal(err)
	}
	copy(data[integrity.LeafSize+17:], "XYZZY")
	want2 := wantLeaves(data)
	root2, _, err := hv.HashRoot(su())
	if err != nil {
		t.Fatal(err)
	}
	if root2 == root {
		t.Fatal("root unchanged after overwrite")
	}
	if root2 != [32]byte(integrity.Root(want2)) {
		t.Fatal("root after overwrite does not match recomputed tree")
	}

	// Truncate to mid-chunk: leaf array clips and the tail leaf rehashes
	// over the shorter clip.
	newLen := int64(integrity.LeafSize/2 + 100)
	if _, err := f.SetAttr(su(), attrLen(newLen)); err != nil {
		t.Fatal(err)
	}
	root3, n3, err := hv.HashRoot(su())
	if err != nil {
		t.Fatal(err)
	}
	if n3 != 1 {
		t.Fatalf("leaf count after truncate %d, want 1", n3)
	}
	if root3 != [32]byte(integrity.Root(wantLeaves(data[:newLen]))) {
		t.Fatal("root after truncate wrong")
	}

	// Extend past the partial tail: the old boundary leaf must rehash
	// over its zero-filled clip.
	extLen := int64(integrity.LeafSize + 999)
	if _, err := f.SetAttr(su(), attrLen(extLen)); err != nil {
		t.Fatal(err)
	}
	ext := make([]byte, extLen)
	copy(ext, data[:newLen])
	root4, _, err := hv.HashRoot(su())
	if err != nil {
		t.Fatal(err)
	}
	// The new tail leaf covers a hole, which reads as zeros — its
	// recorded hash is the hash of those zeros, so it stays verifiable.
	if root4 != [32]byte(integrity.Root(wantLeaves(ext))) {
		t.Fatal("root after extension wrong")
	}
	h1, ok, err := hv.ChunkHash(su(), 1)
	if err != nil || !ok {
		t.Fatalf("extended tail chunk unhashed: ok=%v err=%v", ok, err)
	}
	if h1 != [32]byte(integrity.LeafHash(ext[integrity.LeafSize:])) {
		t.Fatal("tail hole leaf is not the hash of zeros")
	}
}

func attrLen(n int64) (ch fs.AttrChange) {
	ch.Length = &n
	return
}

func TestHashLevelNavigation(t *testing.T) {
	agg := newAgg(t)
	fsys, _ := newVol(t, agg, "v")
	data := make([]byte, 5*integrity.LeafSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	f := hashFile(t, fsys, "f", data)
	hv := f.(vfs.HashVnode)
	want := wantLeaves(data)
	got, err := hv.HashLevel(su(), 0, []int64{0, 3, 4, 99})
	if err != nil {
		t.Fatal(err)
	}
	for i, idx := range []int{0, 3, 4} {
		if got[i] != [32]byte(want[idx]) {
			t.Fatalf("level-0 node %d wrong", idx)
		}
	}
	if got[3] != ([32]byte{}) {
		t.Fatal("out-of-range index should be zero")
	}
	top, err := hv.HashLevel(su(), integrity.Levels(5), []int64{0})
	if err != nil {
		t.Fatal(err)
	}
	if top[0] != [32]byte(integrity.Root(want)) {
		t.Fatal("top level node != root")
	}
}

func TestSetChunkHashes(t *testing.T) {
	agg := newAgg(t)
	fsys, _ := newVol(t, agg, "v")
	root, _ := fsys.Root()
	f, err := root.Create(su(), "f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Give the file a length without data (the striped-primary shape:
	// status flows to the primary, data does not).
	if _, err := f.SetAttr(su(), attrLen(2*integrity.LeafSize)); err != nil {
		t.Fatal(err)
	}
	hv := f.(vfs.HashVnode)
	h0 := integrity.LeafHash([]byte("chunk0"))
	h1 := integrity.LeafHash([]byte("chunk1"))
	if err := hv.SetChunkHashes(su(), 0, [][32]byte{h0, h1}); err != nil {
		t.Fatal(err)
	}
	got, ok, err := hv.ChunkHash(su(), 1)
	if err != nil || !ok {
		t.Fatalf("ChunkHash after set: ok=%v err=%v", ok, err)
	}
	if got != [32]byte(h1) {
		t.Fatal("pushed leaf did not round-trip")
	}
}

func TestScrubLocatesCorruption(t *testing.T) {
	agg := newAgg(t)
	fsys, info := newVol(t, agg, "v")
	data := make([]byte, 3*integrity.LeafSize+777)
	for i := range data {
		data[i] = byte(i)
	}
	f := hashFile(t, fsys, "f", data)
	if res, err := agg.ScrubVolume(info.ID, false); err != nil || len(res.Mismatches) != 0 {
		t.Fatalf("clean scrub: %+v err=%v", res, err)
	}

	// Flip one byte in chunk 2 underneath the episode layer (no rehash):
	// simulated disk rot.
	aid := anode.ID(f.FID().Vnode)
	tx := agg.Store().Begin()
	if _, err := agg.Store().WriteAt(tx, aid, []byte{^data[2*integrity.LeafSize+5]}, 2*integrity.LeafSize+5); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	res, err := agg.ScrubVolume(info.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mismatches) != 1 || res.Mismatches[0].Chunk != 2 || res.Mismatches[0].Anode != aid {
		t.Fatalf("scrub did not locate the damage exactly: %+v", res)
	}
	if res.HashesRepaired != 0 {
		t.Fatal("non-repair scrub repaired something")
	}

	// Repair mode accepts the on-disk bytes; a second pass is clean.
	res, err = agg.ScrubVolume(info.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.HashesRepaired != 1 {
		t.Fatalf("repair count %d", res.HashesRepaired)
	}
	res, err = agg.ScrubVolume(info.ID, false)
	if err != nil || len(res.Mismatches) != 0 {
		t.Fatalf("post-repair scrub: %+v err=%v", res, err)
	}
}

func TestRemoveFreesHashAnode(t *testing.T) {
	agg := newAgg(t)
	fsys, _ := newVol(t, agg, "v")
	data := bytes.Repeat([]byte{9}, integrity.LeafSize)
	hashFile(t, fsys, "f", data)
	root, _ := fsys.Root()
	if err := root.Remove(su(), "f"); err != nil {
		t.Fatal(err)
	}
	res, err := agg.Salvage()
	if err != nil {
		t.Fatal(err)
	}
	if res.OrphansFreed != 0 {
		t.Fatalf("remove leaked %d orphans (hash anode not freed?)", res.OrphansFreed)
	}
}

func TestCloneIsolatesHashTree(t *testing.T) {
	agg := newAgg(t)
	fsys, info := newVol(t, agg, "v")
	data := bytes.Repeat([]byte("ab"), integrity.LeafSize)
	f := hashFile(t, fsys, "f", data)
	snapRootBefore, _, err := f.(vfs.HashVnode).HashRoot(su())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := agg.Clone(info.ID, "v.snap")
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the live file; the snapshot's root must not move.
	if _, err := f.Write(su(), []byte("MUTATED"), 3); err != nil {
		t.Fatal(err)
	}
	sfs, err := agg.Mount(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	sroot, err := sfs.Root()
	if err != nil {
		t.Fatal(err)
	}
	sf, err := sroot.Lookup(su(), "f")
	if err != nil {
		t.Fatal(err)
	}
	snapRoot, _, err := sf.(vfs.HashVnode).HashRoot(su())
	if err != nil {
		t.Fatal(err)
	}
	if snapRoot != snapRootBefore {
		t.Fatal("snapshot hash root moved with a live write")
	}
	liveRoot, _, err := f.(vfs.HashVnode).HashRoot(su())
	if err != nil {
		t.Fatal(err)
	}
	if liveRoot == snapRoot {
		t.Fatal("live root should differ from snapshot after write")
	}
	// Both sides still verify against their own bytes.
	for name, vol := range map[string]fs.VolumeID{"live": info.ID, "snap": snap.ID} {
		res, err := agg.ScrubVolume(vol, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Mismatches) != 0 {
			t.Fatalf("%s volume fails scrub after clone: %+v", name, res)
		}
	}
}
