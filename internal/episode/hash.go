package episode

// Per-file chunk hash trees (the integrity subsystem's Episode half).
//
// Each hashed file carries a companion anode of type TypeHash holding
// its leaf hashes: leaf i (SHA-256 of chunk i's bytes, clipped at the
// file length) lives at byte offset i*32. Like the ACL container, the
// hash anode is "an open-ended address space and nothing more" (§2.4)
// allocated lazily on the first hashed write. TypeHash is not TypeFile,
// so its contents go through the WAL (§2.2): a committed data write and
// its committed leaf update are each atomic, and a crash between the
// two leaves a detectable (not silent) mismatch the scrub repairs.
//
// Everything above the leaves — interior nodes, the 32-byte root — is
// recomputed on demand from the leaf array; only leaves are persisted.

import (
	"decorum/internal/anode"
	"decorum/internal/fs"
	"decorum/internal/integrity"
	"decorum/internal/vfs"
)

// hashLeafBatch bounds how many leaves one logged transaction updates
// (128 leaves = 4 KiB of logged bytes), keeping hash maintenance inside
// the short-transaction discipline.
const hashLeafBatch = 128

// ensureHashAnode allocates the file's hash anode on first use,
// mirroring SetACL's lazy ACL-container allocation.
func (n *Vnode) ensureHashAnode(a *anode.Anode) error {
	if a.Hash != 0 {
		return nil
	}
	st := n.vol.agg.store
	tx := st.Begin()
	h, err := st.Alloc(tx, anode.TypeHash, n.vol.id, 0, a.Owner, a.Group)
	if err != nil {
		abort(tx)
		return err
	}
	a.Hash = h.ID
	if err := st.Put(tx, *a); err != nil {
		abort(tx)
		return err
	}
	return tx.Commit()
}

// rehashLeaves recomputes the given leaf indices from on-disk chunk
// bytes and writes them into the hash anode in one logged transaction.
// Caller holds the vnode lock; a must carry a non-zero Hash.
func (n *Vnode) rehashLeaves(a anode.Anode, idxs []int64) error {
	if len(idxs) == 0 {
		return nil
	}
	st := n.vol.agg.store
	buf := make([]byte, integrity.LeafSize)
	tx := st.Begin()
	for _, idx := range idxs {
		clip := integrity.ClipLeaf(a.Length, idx)
		if clip > 0 {
			if _, err := st.ReadAt(n.id, buf[:clip], idx*integrity.LeafSize); err != nil {
				abort(tx)
				return err
			}
		}
		h := integrity.LeafHash(buf[:clip])
		if _, err := st.WriteAt(tx, a.Hash, h[:], idx*integrity.HashSize); err != nil {
			abort(tx)
			return err
		}
	}
	return tx.Commit()
}

// updateHashLocked brings the leaf hashes covering a just-completed
// write of length bytes at off back in step with the data. oldLen is
// the file length before the write: extending past a previously-partial
// tail chunk changes that chunk's clipped bytes (zero fill appears), so
// its leaf is rehashed too. Caller holds the vnode lock.
func (n *Vnode) updateHashLocked(oldLen, off int64, length int) error {
	if length <= 0 {
		return nil
	}
	a, err := n.load()
	if err != nil {
		return err
	}
	if err := n.ensureHashAnode(&a); err != nil {
		return err
	}
	first := off / integrity.LeafSize
	last := (off + int64(length) - 1) / integrity.LeafSize
	if a.Length > oldLen && oldLen%integrity.LeafSize != 0 {
		if b := oldLen / integrity.LeafSize; b < first {
			first = b
		}
	}
	idxs := make([]int64, 0, hashLeafBatch)
	for idx := first; idx <= last; idx++ {
		idxs = append(idxs, idx)
		if len(idxs) == hashLeafBatch {
			if err := n.rehashLeaves(a, idxs); err != nil {
				return err
			}
			idxs = idxs[:0]
		}
	}
	return n.rehashLeaves(a, idxs)
}

// fixHashTail re-clips the hash tree after a length change: the leaf
// array shrinks or grows to the new chunk count and the boundary chunks
// whose clipped bytes changed are rehashed. Caller holds the vnode
// lock; the data truncation has already committed.
func (n *Vnode) fixHashTail(oldLen, newLen int64) error {
	a, err := n.load()
	if err != nil {
		return err
	}
	if a.Hash == 0 {
		return nil
	}
	st := n.vol.agg.store
	leaves := integrity.LeafCount(newLen)
	tx := st.Begin()
	if err := st.Truncate(tx, a.Hash, leaves*integrity.HashSize); err != nil {
		abort(tx)
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	var idxs []int64
	for _, idx := range []int64{integrity.LeafCount(oldLen) - 1, leaves - 1} {
		if idx >= 0 && idx < leaves && (len(idxs) == 0 || idxs[len(idxs)-1] != idx) {
			idxs = append(idxs, idx)
		}
	}
	return n.rehashLeaves(a, idxs)
}

// readLeavesLocked returns one leaf per started chunk of the current
// length; leaves never recorded (holes, pre-hashing data) are zero.
// Caller holds at least the read lock.
func (n *Vnode) readLeavesLocked(a anode.Anode) ([]integrity.Hash, error) {
	count := integrity.LeafCount(a.Length)
	leaves := make([]integrity.Hash, count)
	if a.Hash == 0 || count == 0 {
		return leaves, nil
	}
	buf := make([]byte, count*integrity.HashSize)
	if _, err := n.vol.agg.store.ReadAt(a.Hash, buf, 0); err != nil {
		return nil, err
	}
	for i := range leaves {
		copy(leaves[i][:], buf[int64(i)*integrity.HashSize:])
	}
	return leaves, nil
}

// HashRoot implements vfs.HashVnode.
func (n *Vnode) HashRoot(ctx *vfs.Context) ([32]byte, int64, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	a, err := n.load()
	if err != nil {
		return [32]byte{}, 0, err
	}
	if a.Type != anode.TypeFile {
		return [32]byte{}, 0, fs.ErrInvalid
	}
	if err := n.require(ctx, a, fs.RightRead); err != nil {
		return [32]byte{}, 0, err
	}
	leaves, err := n.readLeavesLocked(a)
	if err != nil {
		return [32]byte{}, 0, err
	}
	return integrity.Root(leaves), integrity.LeafCount(a.Length), nil
}

// HashLevel implements vfs.HashVnode.
func (n *Vnode) HashLevel(ctx *vfs.Context, level int, indices []int64) ([][32]byte, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	a, err := n.load()
	if err != nil {
		return nil, err
	}
	if a.Type != anode.TypeFile {
		return nil, fs.ErrInvalid
	}
	if err := n.require(ctx, a, fs.RightRead); err != nil {
		return nil, err
	}
	leaves, err := n.readLeavesLocked(a)
	if err != nil {
		return nil, err
	}
	nodes := integrity.Level(leaves, level)
	out := make([][32]byte, len(indices))
	for i, idx := range indices {
		if idx >= 0 && idx < int64(len(nodes)) {
			out[i] = nodes[idx]
		}
	}
	return out, nil
}

// ChunkHash implements vfs.HashVnode: the expected leaf for one chunk,
// read straight from the hash anode (no tree fold on the fetch path).
func (n *Vnode) ChunkHash(ctx *vfs.Context, idx int64) ([32]byte, bool, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	a, err := n.load()
	if err != nil {
		return [32]byte{}, false, err
	}
	if a.Type != anode.TypeFile {
		return [32]byte{}, false, fs.ErrInvalid
	}
	if err := n.require(ctx, a, fs.RightRead); err != nil {
		return [32]byte{}, false, err
	}
	if a.Hash == 0 || idx < 0 || idx >= integrity.LeafCount(a.Length) {
		return [32]byte{}, false, nil
	}
	var h integrity.Hash
	if _, err := n.vol.agg.store.ReadAt(a.Hash, h[:], idx*integrity.HashSize); err != nil {
		return [32]byte{}, false, err
	}
	return h, !h.IsZero(), nil
}

// SetChunkHashes implements vfs.HashVnode: install externally-computed
// leaves. The striped client pushes these to the primary at flush time,
// because striped data bypasses the primary's Write path entirely.
func (n *Vnode) SetChunkHashes(ctx *vfs.Context, start int64, hashes [][32]byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.mutable(); err != nil {
		return err
	}
	a, err := n.load()
	if err != nil {
		return err
	}
	if a.Type != anode.TypeFile {
		return fs.ErrInvalid
	}
	if err := n.require(ctx, a, fs.RightWrite); err != nil {
		return err
	}
	if start < 0 || len(hashes) == 0 {
		if start < 0 {
			return fs.ErrInvalid
		}
		return nil
	}
	if err := n.ensureHashAnode(&a); err != nil {
		return err
	}
	st := n.vol.agg.store
	for i := 0; i < len(hashes); i += hashLeafBatch {
		j := i + hashLeafBatch
		if j > len(hashes) {
			j = len(hashes)
		}
		tx := st.Begin()
		for k := i; k < j; k++ {
			h := hashes[k]
			if _, err := st.WriteAt(tx, a.Hash, h[:], (start+int64(k))*integrity.HashSize); err != nil {
				abort(tx)
				return err
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}
