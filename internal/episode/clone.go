package episode

import (
	"fmt"

	"decorum/internal/anode"
	"decorum/internal/fs"
	"decorum/internal/vfs"
)

// Clone implements vfs.VolumeOps: a read-only copy-on-write snapshot of a
// volume within the same aggregate (§2.1). File data blocks are shared
// (reference counted); directory containers are cloned and their entries
// rewritten to address the cloned children, which copies just the
// directory blocks — "separate copies ... of just as many blocks as
// required".
//
// The caller is responsible for quiescing the volume (the protocol
// exporter takes a whole-volume token / offlines it briefly); Clone itself
// walks the tree in short transactions.
func (g *Aggregate) Clone(id fs.VolumeID, cloneName string) (vfs.VolumeInfo, error) {
	src, err := g.record(id)
	if err != nil {
		return vfs.VolumeInfo{}, err
	}
	g.mu.Lock()
	for _, r := range g.reg {
		if r.Name == cloneName {
			g.mu.Unlock()
			return vfs.VolumeInfo{}, fmt.Errorf("%w: volume %q", fs.ErrExist, cloneName)
		}
	}
	g.mu.Unlock()

	tx := g.store.Begin()
	cloneID, err := g.freshVolID(tx)
	if err != nil {
		abort(tx)
		return vfs.VolumeInfo{}, err
	}
	if err := tx.Commit(); err != nil {
		return vfs.VolumeInfo{}, err
	}
	newRoot, err := g.cloneTree(src.RootAnode, cloneID, make(map[anode.ID]anode.ID))
	if err != nil {
		return vfs.VolumeInfo{}, err
	}
	rec := &volumeRecord{
		ID:        cloneID,
		Name:      cloneName,
		ReadOnly:  true,
		CloneOf:   id,
		RootAnode: newRoot,
		Quota:     src.Quota,
	}
	g.mu.Lock()
	g.reg[cloneID] = rec
	g.mu.Unlock()
	if err := g.saveRegistry(); err != nil {
		return vfs.VolumeInfo{}, err
	}
	return rec.info(), nil
}

// cloneTree clones the anode subtree rooted at aid into volume vol,
// returning the clone's root anode ID. Directories are visited
// recursively; each anode is cloned in its own short transaction. seen
// maps source anodes already cloned in this walk, so a hard-linked file
// gets exactly one clone however many names reference it.
func (g *Aggregate) cloneTree(aid anode.ID, vol fs.VolumeID, seen map[anode.ID]anode.ID) (anode.ID, error) {
	a, err := g.store.Get(aid)
	if err != nil {
		return 0, err
	}
	tx := g.store.Begin()
	clone, err := g.store.CloneAnode(tx, aid, vol)
	if err != nil {
		abort(tx)
		return 0, err
	}
	// Clone the companion containers too, if present: the ACL and the
	// chunk hash tree. The hash clone shares the leaf blocks
	// copy-on-write like everything else, so a post-snapshot write to
	// the source rehashes the source without disturbing the snapshot's
	// expected hashes.
	repoint := false
	if a.ACL != 0 {
		aclClone, err := g.store.CloneAnode(tx, a.ACL, vol)
		if err != nil {
			abort(tx)
			return 0, err
		}
		clone.ACL = aclClone.ID
		repoint = true
	}
	if a.Hash != 0 {
		hashClone, err := g.store.CloneAnode(tx, a.Hash, vol)
		if err != nil {
			abort(tx)
			return 0, err
		}
		clone.Hash = hashClone.ID
		repoint = true
	}
	if repoint {
		if err := g.store.Put(tx, clone); err != nil {
			abort(tx)
			return 0, err
		}
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	if a.Type != anode.TypeDir {
		return clone.ID, nil
	}
	// Recurse into children and rewrite the clone's entries to address
	// the cloned subtrees. A hard-linked file appears under several
	// names but is cloned once (the clone keeps the source's Nlink).
	ents, err := g.dirList(aid)
	if err != nil {
		return 0, err
	}
	for _, e := range ents {
		childClone, ok := seen[e.id]
		if !ok {
			childClone, err = g.cloneTree(e.id, vol, seen)
			if err != nil {
				return 0, err
			}
			seen[e.id] = childClone
		}
		ca, err := g.store.Get(childClone)
		if err != nil {
			return 0, err
		}
		tx := g.store.Begin()
		if err := g.dirRemove(tx, clone.ID, e); err != nil {
			abort(tx)
			return 0, err
		}
		if err := g.dirInsert(tx, clone.ID, dirent{
			typ: e.typ, id: childClone, uniq: ca.Uniq, name: e.name,
		}); err != nil {
			abort(tx)
			return 0, err
		}
		if e.typ == anode.TypeDir {
			ca.Parent = clone.ID
			if err := g.store.Put(tx, ca); err != nil {
				abort(tx)
				return 0, err
			}
		}
		if err := tx.Commit(); err != nil {
			return 0, err
		}
	}
	return clone.ID, nil
}
