package episode

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"decorum/internal/anode"
	"decorum/internal/fs"
	"decorum/internal/integrity"
	"decorum/internal/vfs"
)

// Volume dump/restore: the serialized form used for backups (§2.1 — back
// up a volume by cloning it and writing the clone to media at leisure),
// volume moves between aggregates and servers (§3.6), and lazy replication
// (§3.8).

// dumpHeader leads the stream.
type dumpHeader struct {
	Magic   string
	Version int
	VolID   fs.VolumeID
	Name    string
	Root    uint64 // old root anode ID
}

const (
	dumpMagic   = "EPISODE-DUMP"
	dumpVersion = 1
)

// dumpNode is one anode in the stream. Entries reference old anode IDs;
// Restore rebuilds the mapping.
type dumpNode struct {
	OldID   uint64
	Type    uint8
	Mode    fs.Mode
	Nlink   uint32
	Owner   fs.UserID
	Group   fs.GroupID
	Length  int64
	Atime   int64
	Mtime   int64
	Ctime   int64
	DataVer uint64
	ACL     []byte // encoded ACL, nil if none
	Data    []byte // file data / symlink target; nil for directories
	// Hashes is the file's recorded leaf-hash array (flat, 32 bytes per
	// chunk), nil when the file has no hash anode. Restoring it verbatim
	// keeps the Merkle tree — and with it verified reads and Merkle-diff
	// replication — intact across dump/restore, volume moves, and the
	// replica's InitialSync. Old dumps decode with nil Hashes (gob skips
	// unknown fields both ways), leaving the restored file unhashed.
	Hashes  []byte
	Entries []dumpEntry
}

type dumpEntry struct {
	Name  string
	OldID uint64
	Type  uint8
}

// Dump implements vfs.VolumeOps: serialize a volume. The caller quiesces
// the volume (or dumps a clone, which is the recommended pattern).
func (g *Aggregate) Dump(id fs.VolumeID) ([]byte, error) {
	rec, err := g.record(id)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(dumpHeader{
		Magic:   dumpMagic,
		Version: dumpVersion,
		VolID:   id,
		Name:    rec.Name,
		Root:    uint64(rec.RootAnode),
	}); err != nil {
		return nil, err
	}
	seen := map[anode.ID]bool{}
	if err := g.dumpTree(enc, rec.RootAnode, seen); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (g *Aggregate) dumpTree(enc *gob.Encoder, aid anode.ID, seen map[anode.ID]bool) error {
	if seen[aid] {
		return nil
	}
	seen[aid] = true
	a, err := g.store.Get(aid)
	if err != nil {
		return err
	}
	node := dumpNode{
		OldID:   uint64(aid),
		Type:    uint8(a.Type),
		Mode:    a.Mode,
		Nlink:   a.Nlink,
		Owner:   a.Owner,
		Group:   a.Group,
		Length:  a.Length,
		Atime:   a.Atime,
		Mtime:   a.Mtime,
		Ctime:   a.Ctime,
		DataVer: a.DataVer,
	}
	if a.ACL != 0 {
		holder, err := g.store.Get(a.ACL)
		if err != nil {
			return err
		}
		raw := make([]byte, holder.Length)
		if _, err := g.store.ReadAt(a.ACL, raw, 0); err != nil {
			return err
		}
		node.ACL = raw
	}
	var children []dirent
	switch a.Type {
	case anode.TypeDir:
		ents, err := g.dirList(aid)
		if err != nil {
			return err
		}
		children = ents
		for _, e := range ents {
			node.Entries = append(node.Entries, dumpEntry{
				Name: e.name, OldID: uint64(e.id), Type: uint8(e.typ),
			})
		}
	default:
		data := make([]byte, a.Length)
		if _, err := g.store.ReadAt(aid, data, 0); err != nil {
			return err
		}
		node.Data = data
		if a.Hash != 0 {
			if n := integrity.LeafCount(a.Length); n > 0 {
				hs := make([]byte, n*integrity.HashSize)
				if _, err := g.store.ReadAt(a.Hash, hs, 0); err != nil {
					return err
				}
				node.Hashes = hs
			}
		}
	}
	if err := enc.Encode(node); err != nil {
		return err
	}
	for _, e := range children {
		if err := g.dumpTree(enc, e.id, seen); err != nil {
			return err
		}
	}
	return nil
}

// Restore implements vfs.VolumeOps: materialize a dump as a new read-write
// volume. The dumped volume ID is preserved when free on this aggregate
// (volume moves keep their identity, §2.1); name overrides the dumped name
// when non-empty.
func (g *Aggregate) Restore(dump []byte, name string) (vfs.VolumeInfo, error) {
	dec := gob.NewDecoder(bytes.NewReader(dump))
	var hdr dumpHeader
	if err := dec.Decode(&hdr); err != nil {
		return vfs.VolumeInfo{}, fmt.Errorf("%w: bad dump header: %v", fs.ErrInvalid, err)
	}
	if hdr.Magic != dumpMagic || hdr.Version != dumpVersion {
		return vfs.VolumeInfo{}, fmt.Errorf("%w: not an episode dump", fs.ErrInvalid)
	}
	if name == "" {
		name = hdr.Name
	}
	volID := hdr.VolID
	g.mu.Lock()
	if _, exists := g.reg[volID]; exists {
		g.mu.Unlock()
		return vfs.VolumeInfo{}, fmt.Errorf("%w: volume %d already present", fs.ErrExist, volID)
	}
	for _, r := range g.reg {
		if r.Name == name {
			g.mu.Unlock()
			return vfs.VolumeInfo{}, fmt.Errorf("%w: volume %q", fs.ErrExist, name)
		}
	}
	g.mu.Unlock()

	idMap := map[uint64]anode.ID{}      // old -> new
	pending := map[uint64][]dumpEntry{} // new dir (old id) -> entries
	var nodes []dumpNode
	for {
		var node dumpNode
		if err := dec.Decode(&node); err != nil {
			break // EOF ends the stream
		}
		nodes = append(nodes, node)
	}
	st := g.store
	// Pass 1: create all anodes and write their data.
	for _, node := range nodes {
		tx := st.Begin()
		a, err := st.Alloc(tx, anode.Type(node.Type), volID, node.Mode, node.Owner, node.Group)
		if err != nil {
			abort(tx)
			return vfs.VolumeInfo{}, err
		}
		a.Nlink = node.Nlink
		a.Atime, a.Mtime, a.Ctime = node.Atime, node.Mtime, node.Ctime
		a.DataVer = node.DataVer
		if node.ACL != nil {
			holder, err := st.Alloc(tx, anode.TypeACL, volID, 0, node.Owner, node.Group)
			if err != nil {
				abort(tx)
				return vfs.VolumeInfo{}, err
			}
			if _, err := st.WriteAt(tx, holder.ID, node.ACL, 0); err != nil {
				abort(tx)
				return vfs.VolumeInfo{}, err
			}
			a.ACL = holder.ID
		}
		if err := st.Put(tx, a); err != nil {
			abort(tx)
			return vfs.VolumeInfo{}, err
		}
		if err := tx.Commit(); err != nil {
			return vfs.VolumeInfo{}, err
		}
		// Write file data in bounded transactions.
		if anode.Type(node.Type) != anode.TypeDir && len(node.Data) > 0 {
			const step = 16 * 1024
			for off := 0; off < len(node.Data); off += step {
				end := off + step
				if end > len(node.Data) {
					end = len(node.Data)
				}
				tx := st.Begin()
				if _, err := st.WriteAt(tx, a.ID, node.Data[off:end], int64(off)); err != nil {
					abort(tx)
					return vfs.VolumeInfo{}, err
				}
				if err := tx.Commit(); err != nil {
					return vfs.VolumeInfo{}, err
				}
			}
			// The data writes bumped DataVer; restore the dumped value so
			// version-based diffs (the replication server's incremental
			// update, §3.8) keep working across dump/restore.
			tx := st.Begin()
			cur, err := st.Get(a.ID)
			if err != nil {
				abort(tx)
				return vfs.VolumeInfo{}, err
			}
			cur.DataVer = node.DataVer
			cur.Atime, cur.Mtime, cur.Ctime = node.Atime, node.Mtime, node.Ctime
			if len(node.Hashes) > 0 && anode.Type(node.Type) == anode.TypeFile {
				holder, err := st.Alloc(tx, anode.TypeHash, volID, 0, node.Owner, node.Group)
				if err != nil {
					abort(tx)
					return vfs.VolumeInfo{}, err
				}
				if _, err := st.WriteAt(tx, holder.ID, node.Hashes, 0); err != nil {
					abort(tx)
					return vfs.VolumeInfo{}, err
				}
				cur.Hash = holder.ID
			}
			if err := st.Put(tx, cur); err != nil {
				abort(tx)
				return vfs.VolumeInfo{}, err
			}
			if err := tx.Commit(); err != nil {
				return vfs.VolumeInfo{}, err
			}
		}
		idMap[node.OldID] = a.ID
		if anode.Type(node.Type) == anode.TypeDir {
			pending[node.OldID] = node.Entries
		}
	}
	// Pass 2: fill directories now that every target exists.
	for oldDir, entries := range pending {
		dirID := idMap[oldDir]
		for _, e := range entries {
			childID, ok := idMap[e.OldID]
			if !ok {
				return vfs.VolumeInfo{}, fmt.Errorf("%w: dump entry %q references missing node", fs.ErrInvalid, e.Name)
			}
			ca, err := st.Get(childID)
			if err != nil {
				return vfs.VolumeInfo{}, err
			}
			tx := st.Begin()
			if err := g.dirInsert(tx, dirID, dirent{
				typ: anode.Type(e.Type), id: childID, uniq: ca.Uniq, name: e.Name,
			}); err != nil {
				abort(tx)
				return vfs.VolumeInfo{}, err
			}
			if anode.Type(e.Type) == anode.TypeDir {
				ca.Parent = dirID
				if err := st.Put(tx, ca); err != nil {
					abort(tx)
					return vfs.VolumeInfo{}, err
				}
			}
			if err := tx.Commit(); err != nil {
				return vfs.VolumeInfo{}, err
			}
		}
	}
	rootID, ok := idMap[hdr.Root]
	if !ok {
		return vfs.VolumeInfo{}, fmt.Errorf("%w: dump has no root", fs.ErrInvalid)
	}
	rec := &volumeRecord{
		ID:        volID,
		Name:      name,
		RootAnode: rootID,
	}
	g.mu.Lock()
	g.reg[volID] = rec
	g.mu.Unlock()
	if err := g.saveRegistry(); err != nil {
		return vfs.VolumeInfo{}, err
	}
	return rec.info(), nil
}
