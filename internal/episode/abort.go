package episode

import "decorum/internal/buffer"

// abort rolls tx back on an error path. Abort's own error is deliberately
// dropped: the caller is already propagating the failure that triggered
// the rollback, and compensation failure leaves the buffers dirty for the
// next checkpoint rather than losing anything durable.
func abort(tx *buffer.Tx) {
	//lint:ignore errcheck-io error path is already propagating the original failure
	_ = tx.Abort()
}
