package episode

import (
	"encoding/binary"
	"fmt"

	"decorum/internal/anode"
	"decorum/internal/buffer"
	"decorum/internal/fs"
)

// Directory format: an array of fixed-size entries in the directory
// anode's container. Directory contents are metadata, so every entry
// update is logged (§2.2) and survives crashes atomically with the
// operations that made them.
//
// Entry layout (dirEntSize bytes):
//
//	off 0  used   u8 (0 = tombstone)
//	off 1  type   u8 (anode.Type)
//	off 2  nameLen u16
//	off 4  anode  u64
//	off 12 uniq   u64
//	off 20 name   [MaxNameLen]byte
//
// Deleted entries become tombstones that Create reuses; directories never
// shrink (classic UNIX behaviour).
const (
	dirEntSize = 288
	// MaxNameLen is the longest directory entry name.
	MaxNameLen = 255
)

type dirent struct {
	used  bool
	typ   anode.Type
	id    anode.ID
	uniq  uint64
	name  string
	index int64 // entry slot, for updates
}

func decodeDirent(p []byte, index int64) dirent {
	n := int(binary.BigEndian.Uint16(p[2:]))
	if n > MaxNameLen {
		n = MaxNameLen
	}
	return dirent{
		used:  p[0] != 0,
		typ:   anode.Type(p[1]),
		id:    anode.ID(binary.BigEndian.Uint64(p[4:])),
		uniq:  binary.BigEndian.Uint64(p[12:]),
		name:  string(p[20 : 20+n]),
		index: index,
	}
}

func encodeDirent(e dirent) []byte {
	p := make([]byte, dirEntSize)
	if e.used {
		p[0] = 1
	}
	p[1] = byte(e.typ)
	binary.BigEndian.PutUint16(p[2:], uint16(len(e.name)))
	binary.BigEndian.PutUint64(p[4:], uint64(e.id))
	binary.BigEndian.PutUint64(p[12:], e.uniq)
	copy(p[20:], e.name)
	return p
}

// dirScan iterates the entries of directory anode dir, calling fn for each
// slot (used or tombstone). fn returns true to stop.
func (g *Aggregate) dirScan(dir anode.ID, fn func(e dirent) bool) error {
	a, err := g.store.Get(dir)
	if err != nil {
		return err
	}
	if a.Type != anode.TypeDir {
		return fs.ErrNotDir
	}
	buf := make([]byte, dirEntSize)
	n := a.Length / dirEntSize
	for i := int64(0); i < n; i++ {
		if _, err := g.store.ReadAt(dir, buf, i*dirEntSize); err != nil {
			return err
		}
		if fn(decodeDirent(buf, i)) {
			return nil
		}
	}
	return nil
}

// dirLookup finds a used entry by name.
func (g *Aggregate) dirLookup(dir anode.ID, name string) (dirent, error) {
	var found dirent
	ok := false
	err := g.dirScan(dir, func(e dirent) bool {
		if e.used && e.name == name {
			found, ok = e, true
			return true
		}
		return false
	})
	if err != nil {
		return dirent{}, err
	}
	if !ok {
		return dirent{}, fmt.Errorf("%w: %q", fs.ErrNotExist, name)
	}
	return found, nil
}

// dirInsert adds an entry, reusing the first tombstone or appending.
// The caller has already checked for duplicates under the vnode lock.
func (g *Aggregate) dirInsert(tx *buffer.Tx, dir anode.ID, e dirent) error {
	if len(e.name) == 0 {
		return fs.ErrInvalid
	}
	if len(e.name) > MaxNameLen {
		return fs.ErrNameTooLong
	}
	slot := int64(-1)
	err := g.dirScan(dir, func(cur dirent) bool {
		if !cur.used {
			slot = cur.index
			return true
		}
		return false
	})
	if err != nil {
		return err
	}
	if slot < 0 {
		a, err := g.store.Get(dir)
		if err != nil {
			return err
		}
		slot = a.Length / dirEntSize
	}
	e.used = true
	_, err = g.store.WriteAt(tx, dir, encodeDirent(e), slot*dirEntSize)
	return err
}

// dirRemove tombstones the entry at e.index.
func (g *Aggregate) dirRemove(tx *buffer.Tx, dir anode.ID, e dirent) error {
	e.used = false
	_, err := g.store.WriteAt(tx, dir, encodeDirent(e), e.index*dirEntSize)
	return err
}

// dirEmpty reports whether the directory has no used entries.
func (g *Aggregate) dirEmpty(dir anode.ID) (bool, error) {
	empty := true
	err := g.dirScan(dir, func(e dirent) bool {
		if e.used {
			empty = false
			return true
		}
		return false
	})
	return empty, err
}

// dirList returns the used entries in slot order.
func (g *Aggregate) dirList(dir anode.ID) ([]dirent, error) {
	var out []dirent
	err := g.dirScan(dir, func(e dirent) bool {
		if e.used {
			out = append(out, e)
		}
		return false
	})
	return out, err
}

// ACL storage: an ACL is its own anode (TypeACL) referenced from the file's
// descriptor — the paper's point that ACLs, like everything else, are just
// anodes, with no fixed size limit (§2.4 contrasts AFS's fixed-size ACLs).

func encodeACL(a fs.ACL) []byte {
	p := make([]byte, 4+len(a.Entries)*8)
	binary.BigEndian.PutUint32(p, uint32(len(a.Entries)))
	for i, e := range a.Entries {
		off := 4 + i*8
		p[off] = byte(e.Subject.Kind)
		if e.Deny {
			p[off+1] = 1
		}
		p[off+2] = byte(e.Rights)
		binary.BigEndian.PutUint32(p[off+4:], e.Subject.ID)
	}
	return p
}

func decodeACL(p []byte) (fs.ACL, error) {
	if len(p) < 4 {
		return fs.ACL{}, fmt.Errorf("%w: short ACL", fs.ErrInvalid)
	}
	n := int(binary.BigEndian.Uint32(p))
	if len(p) < 4+n*8 {
		return fs.ACL{}, fmt.Errorf("%w: truncated ACL", fs.ErrInvalid)
	}
	a := fs.ACL{Entries: make([]fs.ACLEntry, n)}
	for i := 0; i < n; i++ {
		off := 4 + i*8
		a.Entries[i] = fs.ACLEntry{
			Subject: fs.Who{
				Kind: fs.WhoKind(p[off]),
				ID:   binary.BigEndian.Uint32(p[off+4:]),
			},
			Deny:   p[off+1] != 0,
			Rights: fs.Rights(p[off+2]),
		}
	}
	return a, nil
}

// loadACL returns the effective ACL for an anode: the explicit one if
// present, else the mode-derived default.
func (g *Aggregate) loadACL(a anode.Anode) (fs.ACL, error) {
	if a.ACL == 0 {
		return fs.FromMode(a.Mode, a.Owner, a.Group), nil
	}
	holder, err := g.store.Get(a.ACL)
	if err != nil {
		return fs.ACL{}, err
	}
	raw := make([]byte, holder.Length)
	if _, err := g.store.ReadAt(a.ACL, raw, 0); err != nil {
		return fs.ACL{}, err
	}
	return decodeACL(raw)
}
