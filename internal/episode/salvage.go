package episode

import (
	"decorum/internal/anode"
	"decorum/internal/fs"
)

// The salvager. Log replay makes crash recovery fast, but the paper is
// explicit that logging does not make salvage obsolete: "Media failure
// will normally necessitate salvaging" (§2.2). And because everything on
// the disk is an anode, "the logging system and the salvager are somewhat
// simpler than they would be if they had to distinguish between anode and
// 'other' disk areas" (§2.4) — the salvager here is one reachability walk
// over the anode table.
//
// The salvager also reclaims orphans from the documented crash window in
// Remove/Rename: the directory entry is unlinked in one transaction and
// the storage freed in follow-up transactions, so a crash in between
// leaves an allocated anode with no referencing directory entry.

// SalvageResult reports what the walk found and fixed.
type SalvageResult struct {
	AnodesScanned  int64
	OrphansFreed   int64 // allocated anodes unreachable from any volume root
	EntriesDropped int64 // directory entries naming missing/stale anodes
	LinkFixes      int64 // nlink corrected to observed name count
}

// Salvage scans every volume on the aggregate, drops dangling directory
// entries, fixes link counts, and frees unreachable anodes. It runs on a
// quiescent aggregate (no mounted activity), in bounded transactions.
func (g *Aggregate) Salvage() (SalvageResult, error) {
	var res SalvageResult
	maxID, err := g.store.MaxID()
	if err != nil {
		return res, err
	}

	type nodeInfo struct {
		a         anode.Anode
		reachable bool
		links     uint32
	}
	nodes := make(map[anode.ID]*nodeInfo)
	for id := anode.ID(2); id < maxID; id++ {
		a, err := g.store.Get(id)
		if err != nil {
			continue // free slot
		}
		res.AnodesScanned++
		nodes[id] = &nodeInfo{a: a}
	}

	// Walk each volume from its root.
	g.mu.Lock()
	roots := make(map[fs.VolumeID]anode.ID, len(g.reg))
	for id, rec := range g.reg {
		roots[id] = rec.RootAnode
	}
	g.mu.Unlock()

	var walk func(dir anode.ID) error
	walk = func(dir anode.ID) error {
		ni := nodes[dir]
		if ni == nil || ni.reachable {
			return nil
		}
		ni.reachable = true
		if ni.a.ACL != 0 {
			if acl := nodes[ni.a.ACL]; acl != nil {
				acl.reachable = true
			}
		}
		if ni.a.Hash != 0 {
			if ha := nodes[ni.a.Hash]; ha != nil {
				ha.reachable = true
			}
		}
		if ni.a.Type != anode.TypeDir {
			return nil
		}
		ents, err := g.dirList(dir)
		if err != nil {
			return err
		}
		var drops []dirent
		for _, e := range ents {
			target := nodes[e.id]
			if target == nil || target.a.Uniq != e.uniq {
				drops = append(drops, e)
				continue
			}
			target.links++
			if e.typ == anode.TypeDir {
				if err := walk(e.id); err != nil {
					return err
				}
			} else {
				target.reachable = true
				if target.a.ACL != 0 {
					if acl := nodes[target.a.ACL]; acl != nil {
						acl.reachable = true
					}
				}
				if target.a.Hash != 0 {
					if ha := nodes[target.a.Hash]; ha != nil {
						ha.reachable = true
					}
				}
			}
		}
		for _, e := range drops {
			tx := g.store.Begin()
			if err := g.dirRemove(tx, dir, e); err != nil {
				abort(tx)
				return err
			}
			if err := tx.Commit(); err != nil {
				return err
			}
			res.EntriesDropped++
		}
		return nil
	}
	for _, root := range roots {
		if ni := nodes[root]; ni != nil {
			ni.links++ // the registry's reference
		}
		if err := walk(root); err != nil {
			return res, err
		}
	}

	// Fix link counts; free orphans.
	for id, ni := range nodes {
		if !ni.reachable {
			if err := g.freeAnodeBounded(id); err != nil {
				return res, err
			}
			res.OrphansFreed++
			continue
		}
		if ni.a.Type == anode.TypeACL || ni.a.Type == anode.TypeHash {
			continue // referenced from descriptors, not directories
		}
		if ni.a.Nlink != ni.links {
			tx := g.store.Begin()
			cur, err := g.store.Get(id)
			if err != nil {
				abort(tx)
				return res, err
			}
			cur.Nlink = ni.links
			if err := g.store.Put(tx, cur); err != nil {
				abort(tx)
				return res, err
			}
			if err := tx.Commit(); err != nil {
				return res, err
			}
			res.LinkFixes++
		}
	}
	return res, g.Sync()
}
