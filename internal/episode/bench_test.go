package episode

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"decorum/internal/blockdev"
	"decorum/internal/vfs"
)

func parallelism(goroutines int) int {
	p := runtime.GOMAXPROCS(0)
	return (goroutines + p - 1) / p
}

func benchVolume(b *testing.B) (vfs.FileSystem, *Aggregate) {
	b.Helper()
	dev := blockdev.NewMem(4096, 65536)
	agg, err := Format(dev, Options{})
	if err != nil {
		b.Fatal(err)
	}
	vol, err := agg.CreateVolume("bench", 0)
	if err != nil {
		b.Fatal(err)
	}
	fsys, err := agg.Mount(vol.ID)
	if err != nil {
		b.Fatal(err)
	}
	return fsys, agg
}

// BenchmarkCreateFile is a metadata transaction through the full Episode
// stack (directory insert + anode alloc, logged).
func BenchmarkCreateFile(b *testing.B) {
	fsys, _ := benchVolume(b)
	root, _ := fsys.Root()
	ctx := vfs.Superuser()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := root.Create(ctx, fmt.Sprintf("f%08d", i), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWrite4K writes 4 KiB sequentially (unlogged data + logged
// pointer/length metadata).
func BenchmarkWrite4K(b *testing.B) {
	fsys, _ := benchVolume(b)
	root, _ := fsys.Root()
	ctx := vfs.Superuser()
	f, err := root.Create(ctx, "big", 0o644)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%4096) * 4096 // wrap inside the device
		if _, err := f.Write(ctx, payload, off); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCreateFileParallel runs metadata transactions from N
// goroutines. Directory inserts serialize on the root vnode, but the
// log append, buffer traffic, and anode allocation underneath now run
// against sharded/group-committed structures.
func BenchmarkCreateFileParallel(b *testing.B) {
	for _, gor := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", gor), func(b *testing.B) {
			fsys, _ := benchVolume(b)
			root, _ := fsys.Root()
			ctx := vfs.Superuser()
			var seq atomic.Int64
			b.SetParallelism(parallelism(gor))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := seq.Add(1)
					if _, err := root.Create(ctx, fmt.Sprintf("p%08d", n), 0o644); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkWrite4KParallel writes 4 KiB blocks from N goroutines, each
// to its own file, so the contention is purely in the shared buffer
// pool and log.
func BenchmarkWrite4KParallel(b *testing.B) {
	for _, gor := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", gor), func(b *testing.B) {
			fsys, _ := benchVolume(b)
			root, _ := fsys.Root()
			ctx := vfs.Superuser()
			var fileSeq atomic.Int64
			payload := make([]byte, 4096)
			b.SetBytes(4096)
			b.SetParallelism(parallelism(gor))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				f, err := root.Create(ctx, fmt.Sprintf("w%d", fileSeq.Add(1)), 0o644)
				if err != nil {
					b.Fatal(err)
				}
				var i int64
				for pb.Next() {
					off := (i % 1024) * 4096 // wrap inside the device
					i++
					if _, err := f.Write(ctx, payload, off); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkRead4KCached reads 4 KiB through the buffer cache.
func BenchmarkRead4KCached(b *testing.B) {
	fsys, _ := benchVolume(b)
	root, _ := fsys.Root()
	ctx := vfs.Superuser()
	f, _ := root.Create(ctx, "data", 0o644)
	if _, err := f.Write(ctx, make([]byte, 1<<20), 0); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Read(ctx, buf, int64(i%256)*4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVolumeClone snapshots an 8-file volume.
func BenchmarkVolumeClone(b *testing.B) {
	fsys, agg := benchVolume(b)
	root, _ := fsys.Root()
	ctx := vfs.Superuser()
	for i := 0; i < 8; i++ {
		f, _ := root.Create(ctx, fmt.Sprintf("f%d", i), 0o644)
		if _, err := f.Write(ctx, make([]byte, 64*1024), 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agg.Clone(1, fmt.Sprintf("snap%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}
