package episode

import (
	"decorum/internal/anode"
	"decorum/internal/fs"
	"decorum/internal/integrity"
)

// The integrity scrub: the salvager-path (§2.2/S22) walk that checks
// every hashed file's on-disk chunks against its recorded leaf hashes.
// Log replay protects metadata; user data is unlogged and disks rot, so
// the scrub is how latent corruption is found while the file is cold —
// before a client trips over it — and how the hash tree itself is
// repaired after the documented crash window between a committed data
// write and its committed leaf update.

// ScrubMismatch locates one damaged chunk exactly.
type ScrubMismatch struct {
	Anode anode.ID
	Vnode fs.FID
	Chunk int64
	Want  integrity.Hash // recorded leaf
	Got   integrity.Hash // hash of the bytes on disk
}

// ScrubResult reports a scrub pass.
type ScrubResult struct {
	FilesScanned   int64
	ChunksScanned  int64
	ChunksSkipped  int64 // no leaf recorded (holes, pre-hashing data)
	Mismatches     []ScrubMismatch
	HashesRepaired int64 // leaves rewritten from on-disk bytes (repair mode)
}

// ScrubVolume walks every hashed file of one volume and verifies each
// recorded leaf against the chunk bytes on disk. With repair set,
// mismatching leaves are rewritten from the on-disk bytes — that
// accepts the data as truth, which is the right call for the
// crash-window case (data committed, leaf not) and the only local
// option on an unreplicated volume; the mismatch list is still
// returned so redundancy-aware callers (striped clients, replication)
// can re-write the data instead. Runs on a quiescent volume.
func (g *Aggregate) ScrubVolume(vol fs.VolumeID, repair bool) (ScrubResult, error) {
	var res ScrubResult
	maxID, err := g.store.MaxID()
	if err != nil {
		return res, err
	}
	buf := make([]byte, integrity.LeafSize)
	for id := anode.ID(2); id < maxID; id++ {
		a, err := g.store.Get(id)
		if err != nil {
			continue // free slot
		}
		if a.Volume != vol || a.Type != anode.TypeFile || a.Hash == 0 {
			continue
		}
		res.FilesScanned++
		count := integrity.LeafCount(a.Length)
		for idx := int64(0); idx < count; idx++ {
			var want integrity.Hash
			if _, err := g.store.ReadAt(a.Hash, want[:], idx*integrity.HashSize); err != nil {
				return res, err
			}
			if want.IsZero() {
				res.ChunksSkipped++
				continue
			}
			res.ChunksScanned++
			clip := integrity.ClipLeaf(a.Length, idx)
			if _, err := g.store.ReadAt(id, buf[:clip], idx*integrity.LeafSize); err != nil {
				return res, err
			}
			got := integrity.LeafHash(buf[:clip])
			if got == want {
				continue
			}
			g.scrubErrors.Add(1)
			res.Mismatches = append(res.Mismatches, ScrubMismatch{
				Anode: id,
				Vnode: fs.FID{Volume: a.Volume, Vnode: uint64(id), Uniq: a.Uniq},
				Chunk: idx,
				Want:  want,
				Got:   got,
			})
			if repair {
				tx := g.store.Begin()
				if _, err := g.store.WriteAt(tx, a.Hash, got[:], idx*integrity.HashSize); err != nil {
					abort(tx)
					return res, err
				}
				if err := tx.Commit(); err != nil {
					return res, err
				}
				res.HashesRepaired++
			}
		}
	}
	return res, nil
}
