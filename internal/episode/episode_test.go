package episode

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"decorum/internal/blockdev"
	"decorum/internal/fs"
	"decorum/internal/vfs"
)

const (
	testBS  = 512
	testDev = 4096
)

var testOpts = Options{
	LogBlocks: 64,
	PoolSize:  128,
	Clock:     func() int64 { return 1000 },
}

func newAgg(t *testing.T) *Aggregate {
	t.Helper()
	dev := blockdev.NewMem(testBS, testDev)
	agg, err := Format(dev, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

// newVol creates a volume and mounts it.
func newVol(t *testing.T, agg *Aggregate, name string) (vfs.FileSystem, vfs.VolumeInfo) {
	t.Helper()
	info, err := agg.CreateVolume(name, 0)
	if err != nil {
		t.Fatal(err)
	}
	fsys, err := agg.Mount(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	return fsys, info
}

func su() *vfs.Context { return vfs.Superuser() }

func TestCreateVolumeAndRoot(t *testing.T) {
	agg := newAgg(t)
	fsys, info := newVol(t, agg, "user.alice")
	root, err := fsys.Root()
	if err != nil {
		t.Fatal(err)
	}
	attr, err := root.Attr(su())
	if err != nil {
		t.Fatal(err)
	}
	if attr.Type != fs.TypeDir {
		t.Fatalf("root type %v", attr.Type)
	}
	if attr.FID.Volume != info.ID {
		t.Fatalf("root volume %d, want %d", attr.FID.Volume, info.ID)
	}
	// Duplicate name rejected.
	if _, err := agg.CreateVolume("user.alice", 0); !errors.Is(err, fs.ErrExist) {
		t.Fatalf("duplicate volume: %v", err)
	}
	// Listed.
	vols, err := agg.Volumes()
	if err != nil {
		t.Fatal(err)
	}
	if len(vols) != 1 || vols[0].Name != "user.alice" {
		t.Fatalf("Volumes() = %+v", vols)
	}
}

func TestFileLifecycle(t *testing.T) {
	agg := newAgg(t)
	fsys, _ := newVol(t, agg, "v")
	root, _ := fsys.Root()

	f, err := root.Create(su(), "hello.txt", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello, DEcorum")
	if n, err := f.Write(su(), msg, 0); err != nil || n != len(msg) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	got := make([]byte, len(msg))
	if n, err := f.Read(su(), got, 0); err != nil || n != len(msg) {
		t.Fatalf("Read = %d, %v", n, err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q", got)
	}
	attr, err := f.Attr(su())
	if err != nil {
		t.Fatal(err)
	}
	if attr.Length != int64(len(msg)) || attr.Type != fs.TypeFile {
		t.Fatalf("attr %+v", attr)
	}
	// Lookup returns the same file.
	f2, err := root.Lookup(su(), "hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if f2.FID() != f.FID() {
		t.Fatal("lookup returned different FID")
	}
	// Remove; lookup now fails; FID is stale.
	if err := root.Remove(su(), "hello.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Lookup(su(), "hello.txt"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("lookup after remove: %v", err)
	}
	if _, err := f.Attr(su()); !errors.Is(err, fs.ErrStale) {
		t.Fatalf("attr of removed file: %v", err)
	}
}

func TestMkdirTreeAndWalk(t *testing.T) {
	agg := newAgg(t)
	fsys, _ := newVol(t, agg, "v")
	root, _ := fsys.Root()
	d1, err := root.Mkdir(su(), "a", 0o755)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := d1.Mkdir(su(), "b", 0o755)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Create(su(), "c.txt", 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.Walk(su(), root, "a/b/c.txt")
	if err != nil {
		t.Fatal(err)
	}
	attr, _ := got.Attr(su())
	if attr.Type != fs.TypeFile {
		t.Fatalf("walked to %v", attr.Type)
	}
	// Rmdir refuses non-empty.
	if err := root.Rmdir(su(), "a"); !errors.Is(err, fs.ErrNotEmpty) {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	if err := d2.Remove(su(), "c.txt"); err != nil {
		t.Fatal(err)
	}
	if err := d1.Rmdir(su(), "b"); err != nil {
		t.Fatal(err)
	}
	if err := root.Rmdir(su(), "a"); err != nil {
		t.Fatal(err)
	}
}

func TestReadDir(t *testing.T) {
	agg := newAgg(t)
	fsys, _ := newVol(t, agg, "v")
	root, _ := fsys.Root()
	names := []string{"x", "y", "z"}
	for _, n := range names {
		if _, err := root.Create(su(), n, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := root.Mkdir(su(), "sub", 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := root.ReadDir(su())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 4 {
		t.Fatalf("%d entries", len(ents))
	}
	byName := map[string]fs.Dirent{}
	for _, e := range ents {
		byName[e.Name] = e
	}
	if byName["sub"].Type != fs.TypeDir || byName["x"].Type != fs.TypeFile {
		t.Fatalf("entries %+v", ents)
	}
	// Tombstone reuse: remove then create keeps the directory compact.
	if err := root.Remove(su(), "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Create(su(), "w", 0o644); err != nil {
		t.Fatal(err)
	}
	ents2, _ := root.ReadDir(su())
	if len(ents2) != 4 {
		t.Fatalf("after reuse: %d entries", len(ents2))
	}
}

func TestSymlink(t *testing.T) {
	agg := newAgg(t)
	fsys, _ := newVol(t, agg, "v")
	root, _ := fsys.Root()
	ln, err := root.Symlink(su(), "link", "some/where/else")
	if err != nil {
		t.Fatal(err)
	}
	target, err := ln.Readlink(su())
	if err != nil {
		t.Fatal(err)
	}
	if target != "some/where/else" {
		t.Fatalf("readlink %q", target)
	}
	// A long target goes through the container path.
	long := string(bytes.Repeat([]byte{'p'}, 300))
	ln2, err := root.Symlink(su(), "long", long)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ln2.Readlink(su())
	if err != nil || got != long {
		t.Fatalf("long readlink: %v (len %d)", err, len(got))
	}
	if _, err := ln.Readlink(su()); err != nil {
		t.Fatal(err)
	}
}

func TestHardLinks(t *testing.T) {
	agg := newAgg(t)
	fsys, _ := newVol(t, agg, "v")
	root, _ := fsys.Root()
	f, err := root.Create(su(), "orig", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(su(), []byte("shared"), 0); err != nil {
		t.Fatal(err)
	}
	if err := root.Link(su(), "alias", f); err != nil {
		t.Fatal(err)
	}
	attr, _ := f.Attr(su())
	if attr.Nlink != 2 {
		t.Fatalf("Nlink = %d", attr.Nlink)
	}
	// Both names reach the same data.
	alias, err := root.Lookup(su(), "alias")
	if err != nil {
		t.Fatal(err)
	}
	if alias.FID() != f.FID() {
		t.Fatal("alias has different FID")
	}
	// Removing one name keeps the file.
	if err := root.Remove(su(), "orig"); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6)
	if _, err := alias.Read(su(), got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "shared" {
		t.Fatalf("after unlink: %q", got)
	}
	attr, _ = alias.Attr(su())
	if attr.Nlink != 1 {
		t.Fatalf("Nlink after remove = %d", attr.Nlink)
	}
	// Hard link to directory rejected.
	d, _ := root.Mkdir(su(), "d", 0o755)
	if err := root.Link(su(), "dlink", d); !errors.Is(err, fs.ErrIsDir) {
		t.Fatalf("dir hard link: %v", err)
	}
}

func TestRenameBasics(t *testing.T) {
	agg := newAgg(t)
	fsys, _ := newVol(t, agg, "v")
	root, _ := fsys.Root()
	f, _ := root.Create(su(), "a", 0o644)
	if _, err := f.Write(su(), []byte("data"), 0); err != nil {
		t.Fatal(err)
	}
	d, _ := root.Mkdir(su(), "dir", 0o755)
	// Same-dir rename.
	if err := root.Rename(su(), "a", root, "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Lookup(su(), "a"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("old name still present")
	}
	// Cross-dir move.
	if err := root.Rename(su(), "b", d, "c"); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.Walk(su(), root, "dir/c")
	if err != nil {
		t.Fatal(err)
	}
	if got.FID() != f.FID() {
		t.Fatal("moved file changed identity")
	}
	// Replace an existing target.
	victim, _ := root.Create(su(), "victim", 0o644)
	if err := d.Rename(su(), "c", root, "victim"); err != nil {
		t.Fatal(err)
	}
	if _, err := victim.Attr(su()); !errors.Is(err, fs.ErrStale) {
		t.Fatalf("replaced file should be gone: %v", err)
	}
}

func TestRenameCycleRejected(t *testing.T) {
	agg := newAgg(t)
	fsys, _ := newVol(t, agg, "v")
	root, _ := fsys.Root()
	a, _ := root.Mkdir(su(), "a", 0o755)
	b, _ := a.Mkdir(su(), "b", 0o755)
	c, _ := b.Mkdir(su(), "c", 0o755)
	_ = c
	// mv /a /a/b/c/a → cycle.
	if err := root.Rename(su(), "a", c, "a"); !errors.Is(err, fs.ErrInvalid) {
		t.Fatalf("cycle rename: %v", err)
	}
	// A legal sibling move still works.
	d, _ := root.Mkdir(su(), "d", 0o755)
	if err := a.Rename(su(), "b", d, "b2"); err != nil {
		t.Fatal(err)
	}
	if _, err := vfs.Walk(su(), root, "d/b2/c"); err != nil {
		t.Fatal(err)
	}
}

func TestPermissionsViaModeBits(t *testing.T) {
	agg := newAgg(t)
	fsys, _ := newVol(t, agg, "v")
	root, _ := fsys.Root()
	owner := &vfs.Context{User: 100}
	other := &vfs.Context{User: 200}
	f, err := root.Create(su(), "private", 0o600)
	if err != nil {
		t.Fatal(err)
	}
	// Transfer ownership so mode bits apply to user 100.
	o := fs.UserID(100)
	if _, err := f.SetAttr(su(), fs.AttrChange{Owner: &o}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(owner, []byte("secret"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	if _, err := f.Read(other, buf, 0); !errors.Is(err, fs.ErrPerm) {
		t.Fatalf("other read of 0600 file: %v", err)
	}
	if _, err := f.Read(owner, buf, 0); err != nil {
		t.Fatal(err)
	}
	// Superuser always passes.
	if _, err := f.Read(su(), buf, 0); err != nil {
		t.Fatal(err)
	}
}

func TestACLOnFile(t *testing.T) {
	agg := newAgg(t)
	fsys, _ := newVol(t, agg, "v")
	root, _ := fsys.Root()
	f, _ := root.Create(su(), "f", 0o644)
	av, ok := f.(vfs.ACLVnode)
	if !ok {
		t.Fatal("episode vnode must implement ACLVnode")
	}
	// Default ACL derives from the mode.
	acl, err := av.ACL(su())
	if err != nil {
		t.Fatal(err)
	}
	if len(acl.Entries) == 0 {
		t.Fatal("empty default ACL")
	}
	// Explicit ACL: grant bob read, deny carol everything.
	var custom fs.ACL
	custom.Grant(fs.Who{Kind: fs.WhoUser, ID: 300}, fs.RightRead)
	custom.Grant(fs.Who{Kind: fs.WhoOther}, fs.RightRead|fs.RightWrite)
	custom.Denies(fs.Who{Kind: fs.WhoUser, ID: 400}, fs.RightsAll)
	if err := av.SetACL(su(), custom); err != nil {
		t.Fatal(err)
	}
	bob := &vfs.Context{User: 300}
	carol := &vfs.Context{User: 400}
	buf := make([]byte, 4)
	if _, err := f.Read(bob, buf, 0); err != nil {
		t.Fatalf("bob read: %v", err)
	}
	if _, err := f.Write(bob, []byte("x"), 0); !errors.Is(err, fs.ErrPerm) {
		t.Fatalf("bob write (read-only grant): %v", err)
	}
	if _, err := f.Read(carol, buf, 0); !errors.Is(err, fs.ErrPerm) {
		t.Fatalf("carol read (denied): %v", err)
	}
	// Round trip.
	got, err := av.ACL(su())
	if err != nil {
		t.Fatal(err)
	}
	got.Normalize()
	custom.Normalize()
	if got.String() != custom.String() {
		t.Fatalf("ACL round trip: %v != %v", got, custom)
	}
}

func TestSetAttrTruncate(t *testing.T) {
	agg := newAgg(t)
	fsys, _ := newVol(t, agg, "v")
	root, _ := fsys.Root()
	f, _ := root.Create(su(), "f", 0o644)
	big := bytes.Repeat([]byte{7}, 200*1024) // forces bounded truncate loop
	if _, err := f.Write(su(), big, 0); err != nil {
		t.Fatal(err)
	}
	nl := int64(10)
	attr, err := f.SetAttr(su(), fs.AttrChange{Length: &nl})
	if err != nil {
		t.Fatal(err)
	}
	if attr.Length != 10 {
		t.Fatalf("Length = %d", attr.Length)
	}
	buf := make([]byte, 20)
	n, err := f.Read(su(), buf, 0)
	if err != nil || n != 10 {
		t.Fatalf("read after truncate: %d, %v", n, err)
	}
}

func TestReadOnlyVolumeRejectsWrites(t *testing.T) {
	agg := newAgg(t)
	fsys, info := newVol(t, agg, "v")
	root, _ := fsys.Root()
	f, _ := root.Create(su(), "f", 0o644)
	if _, err := f.Write(su(), []byte("before"), 0); err != nil {
		t.Fatal(err)
	}
	clone, err := agg.Clone(info.ID, "v.readonly")
	if err != nil {
		t.Fatal(err)
	}
	cfs, err := agg.Mount(clone.ID)
	if err != nil {
		t.Fatal(err)
	}
	croot, _ := cfs.Root()
	cf, err := croot.Lookup(su(), "f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cf.Write(su(), []byte("nope"), 0); !errors.Is(err, fs.ErrReadOnly) {
		t.Fatalf("write to snapshot: %v", err)
	}
	if _, err := croot.Create(su(), "new", 0o644); !errors.Is(err, fs.ErrReadOnly) {
		t.Fatalf("create in snapshot: %v", err)
	}
}

func TestCloneIsSnapshot(t *testing.T) {
	agg := newAgg(t)
	fsys, info := newVol(t, agg, "v")
	root, _ := fsys.Root()
	d, _ := root.Mkdir(su(), "docs", 0o755)
	f, _ := d.Create(su(), "report", 0o644)
	if _, err := f.Write(su(), []byte("version-1"), 0); err != nil {
		t.Fatal(err)
	}
	clone, err := agg.Clone(info.ID, "v.snap")
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the original after the snapshot.
	if _, err := f.Write(su(), []byte("version-2"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Create(su(), "post-snap", 0o644); err != nil {
		t.Fatal(err)
	}
	// The snapshot still shows version-1 and no post-snap file.
	cfs, _ := agg.Mount(clone.ID)
	croot, _ := cfs.Root()
	got, err := vfs.Walk(su(), croot, "docs/report")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 9)
	if _, err := got.Read(su(), buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "version-1" {
		t.Fatalf("snapshot sees %q", buf)
	}
	if _, err := croot.Lookup(su(), "post-snap"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("snapshot sees post-snap file: %v", err)
	}
	if clone.CloneOf != info.ID || !clone.ReadOnly {
		t.Fatalf("clone info %+v", clone)
	}
}

func TestCloneSharesDataBlocks(t *testing.T) {
	agg := newAgg(t)
	fsys, info := newVol(t, agg, "v")
	root, _ := fsys.Root()
	f, _ := root.Create(su(), "big", 0o644)
	data := bytes.Repeat([]byte{9}, 100*testBS)
	if _, err := f.Write(su(), data, 0); err != nil {
		t.Fatal(err)
	}
	free0 := agg.Store().FreeBlocks()
	if _, err := agg.Clone(info.ID, "v.snap"); err != nil {
		t.Fatal(err)
	}
	used := free0 - agg.Store().FreeBlocks()
	// The clone copies directory blocks and descriptors but shares the
	// 100 data blocks; allow generous metadata overhead.
	if used > 20 {
		t.Fatalf("clone consumed %d blocks for a 100-block file", used)
	}
}

func TestDumpRestoreRoundTrip(t *testing.T) {
	aggA := newAgg(t)
	fsys, info := newVol(t, aggA, "proj")
	root, _ := fsys.Root()
	d, _ := root.Mkdir(su(), "src", 0o755)
	f, _ := d.Create(su(), "main.go", 0o644)
	content := []byte("package main\n")
	if _, err := f.Write(su(), content, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Symlink(su(), "latest", "src/main.go"); err != nil {
		t.Fatal(err)
	}
	if err := root.Link(su(), "hardlink", f); err != nil {
		t.Fatal(err)
	}
	av := f.(vfs.ACLVnode)
	var acl fs.ACL
	acl.Grant(fs.Who{Kind: fs.WhoUser, ID: 42}, fs.RightRead)
	if err := av.SetACL(su(), acl); err != nil {
		t.Fatal(err)
	}

	dump, err := aggA.Dump(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Restore into a different aggregate (a volume move).
	aggB := newAgg(t)
	restored, err := aggB.Restore(dump, "")
	if err != nil {
		t.Fatal(err)
	}
	if restored.ID != info.ID {
		t.Fatalf("move changed volume ID: %d -> %d", info.ID, restored.ID)
	}
	if restored.Name != "proj" {
		t.Fatalf("restored name %q", restored.Name)
	}
	bfs, err := aggB.Mount(restored.ID)
	if err != nil {
		t.Fatal(err)
	}
	broot, _ := bfs.Root()
	got, err := vfs.Walk(su(), broot, "src/main.go")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(content))
	if _, err := got.Read(su(), buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, content) {
		t.Fatalf("restored content %q", buf)
	}
	// Symlink preserved.
	ln, err := broot.Lookup(su(), "latest")
	if err != nil {
		t.Fatal(err)
	}
	if target, _ := ln.Readlink(su()); target != "src/main.go" {
		t.Fatalf("restored symlink %q", target)
	}
	// Hard link preserved: same FID under both names.
	hl, err := broot.Lookup(su(), "hardlink")
	if err != nil {
		t.Fatal(err)
	}
	if hl.FID() != got.FID() {
		t.Fatal("hard link broken by dump/restore")
	}
	// ACL preserved.
	gacl, err := got.(vfs.ACLVnode).ACL(su())
	if err != nil {
		t.Fatal(err)
	}
	gacl.Normalize()
	acl.Normalize()
	if gacl.String() != acl.String() {
		t.Fatalf("restored ACL %v, want %v", gacl, acl)
	}
	// Restoring again collides on the volume ID.
	if _, err := aggB.Restore(dump, "other"); !errors.Is(err, fs.ErrExist) {
		t.Fatalf("duplicate restore: %v", err)
	}
}

func TestDeleteVolumeReclaims(t *testing.T) {
	agg := newAgg(t)
	fsys, info := newVol(t, agg, "v")
	root, _ := fsys.Root()
	// Warm the anode table first: creating the file (and its hash anode)
	// can grow the table by a block that is never shrunk, so take the
	// baseline after one create/remove cycle of the same shape.
	warm, _ := root.Create(su(), "big", 0o644)
	if _, err := warm.Write(su(), bytes.Repeat([]byte{1}, 50*testBS), 0); err != nil {
		t.Fatal(err)
	}
	if err := root.Remove(su(), "big"); err != nil {
		t.Fatal(err)
	}
	free0 := agg.Store().FreeBlocks()
	f, _ := root.Create(su(), "big", 0o644)
	if _, err := f.Write(su(), bytes.Repeat([]byte{1}, 50*testBS), 0); err != nil {
		t.Fatal(err)
	}
	if err := agg.DeleteVolume(info.ID); err != nil {
		t.Fatal(err)
	}
	// All data blocks are back (the root dir block and anode-table growth
	// may keep a few).
	if got := agg.Store().FreeBlocks(); got < free0 {
		t.Fatalf("free %d < baseline %d after delete", got, free0)
	}
	if _, err := agg.Mount(info.ID); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("mount deleted volume: %v", err)
	}
}

// The flagship crash test: committed operations survive, interrupted ones
// vanish, and the file system opens instantly without a salvage pass.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	mem := blockdev.NewMem(testBS, testDev)
	crash := blockdev.NewCrash(mem)
	agg, err := Format(crash, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	info, err := agg.CreateVolume("v", 0)
	if err != nil {
		t.Fatal(err)
	}
	fsys, err := agg.Mount(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	root, _ := fsys.Root()
	for i := 0; i < 10; i++ {
		if _, err := root.Create(su(), fmt.Sprintf("pre-%d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Make the pre-crash state durable, then do more work that stays
	// only in the log/cache.
	if err := agg.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := root.Create(su(), fmt.Sprintf("post-%d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Force the log (but not the buffers) so the creates are committed
	// durable; the data blocks themselves may be lost.
	if err := agg.Log().Sync(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	if err := crash.Crash(blockdev.RandomSubset, rng); err != nil {
		t.Fatal(err)
	}

	// Reboot.
	agg2, err := Open(mem, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if agg2.RecoveryResult.Scanned == 0 {
		t.Fatal("recovery scanned nothing; the crash lost no state?")
	}
	fsys2, err := agg2.Mount(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	root2, _ := fsys2.Root()
	ents, err := root2.ReadDir(su())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 20 {
		t.Fatalf("after recovery: %d entries, want 20", len(ents))
	}
	// The volume keeps working.
	if _, err := root2.Create(su(), "after-reboot", 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCrashMidOperationAtomicity(t *testing.T) {
	// Run the same workload many times, crashing with random subsets, and
	// verify the namespace is never half-updated.
	for seed := int64(0); seed < 8; seed++ {
		mem := blockdev.NewMem(testBS, testDev)
		crash := blockdev.NewCrash(mem)
		agg, err := Format(crash, testOpts)
		if err != nil {
			t.Fatal(err)
		}
		info, err := agg.CreateVolume("v", 0)
		if err != nil {
			t.Fatal(err)
		}
		fsys, _ := agg.Mount(info.ID)
		root, _ := fsys.Root()
		if _, err := root.Create(su(), "stable", 0o644); err != nil {
			t.Fatal(err)
		}
		if err := agg.Sync(); err != nil {
			t.Fatal(err)
		}
		// Unsynced churn.
		for i := 0; i < 5; i++ {
			name := fmt.Sprintf("churn-%d", i)
			if _, err := root.Create(su(), name, 0o644); err != nil {
				t.Fatal(err)
			}
			if i%2 == 0 {
				if err := root.Rename(su(), name, root, name+"-renamed"); err != nil {
					t.Fatal(err)
				}
			}
		}
		rng := rand.New(rand.NewSource(seed))
		if err := crash.Crash(blockdev.RandomSubset, rng); err != nil {
			t.Fatal(err)
		}
		agg2, err := Open(mem, testOpts)
		if err != nil {
			t.Fatalf("seed %d: reopen: %v", seed, err)
		}
		fsys2, err := agg2.Mount(info.ID)
		if err != nil {
			t.Fatalf("seed %d: mount: %v", seed, err)
		}
		root2, _ := fsys2.Root()
		ents, err := root2.ReadDir(su())
		if err != nil {
			t.Fatalf("seed %d: readdir: %v", seed, err)
		}
		seen := map[string]bool{}
		for _, e := range ents {
			seen[e.Name] = true
		}
		if !seen["stable"] {
			t.Fatalf("seed %d: durable file lost", seed)
		}
		// Rename atomicity: never both old and new name.
		for i := 0; i < 5; i += 2 {
			name := fmt.Sprintf("churn-%d", i)
			if seen[name] && seen[name+"-renamed"] {
				t.Fatalf("seed %d: rename produced two names", seed)
			}
		}
		// Every surviving entry must resolve (no dangling entries).
		for _, e := range ents {
			if _, err := root2.Lookup(su(), e.Name); err != nil {
				t.Fatalf("seed %d: dangling entry %q: %v", seed, e.Name, err)
			}
		}
	}
}

func TestStatfs(t *testing.T) {
	agg := newAgg(t)
	fsys, _ := newVol(t, agg, "v")
	st, err := fsys.Statfs()
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalBlocks != testDev || st.BlockSize != testBS {
		t.Fatalf("statfs %+v", st)
	}
	if st.FreeBlocks <= 0 || st.FreeBlocks >= st.TotalBlocks {
		t.Fatalf("free blocks %d", st.FreeBlocks)
	}
}

func TestVolumeOffline(t *testing.T) {
	agg := newAgg(t)
	fsys, info := newVol(t, agg, "v")
	root, _ := fsys.Root()
	if err := agg.SetOffline(info.ID, true); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Attr(su()); !errors.Is(err, fs.ErrOffline) {
		t.Fatalf("op on offline volume: %v", err)
	}
	if err := agg.SetOffline(info.ID, false); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Attr(su()); err != nil {
		t.Fatalf("op after online: %v", err)
	}
}

func TestGetByFIDAndStale(t *testing.T) {
	agg := newAgg(t)
	fsys, _ := newVol(t, agg, "v")
	root, _ := fsys.Root()
	f, _ := root.Create(su(), "f", 0o644)
	fid := f.FID()
	got, err := fsys.Get(fid)
	if err != nil {
		t.Fatal(err)
	}
	if got.FID() != fid {
		t.Fatal("Get returned wrong vnode")
	}
	// Wrong uniq → stale.
	bad := fid
	bad.Uniq += 99
	if _, err := fsys.Get(bad); !errors.Is(err, fs.ErrStale) {
		t.Fatalf("stale fid: %v", err)
	}
	// Wrong volume → stale.
	bad = fid
	bad.Volume += 7
	if _, err := fsys.Get(bad); !errors.Is(err, fs.ErrStale) {
		t.Fatalf("cross-volume fid: %v", err)
	}
}
