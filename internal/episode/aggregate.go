// Package episode implements the Episode physical file system (§2 of the
// paper): a fast-restarting file system with logical volumes, ACLs on any
// file, copy-on-write volume clones, and log-based crash recovery.
//
// An Aggregate is a unit of disk storage (one device); it holds any number
// of Volumes, each a mountable subtree (§2.1). The two are distinct so
// volumes can be cloned, moved between aggregates, and moved between
// servers without repartitioning — the property the paper calls essential
// for administering networks of thousands of workstations.
//
// Layering: episode sits on internal/anode (containers, allocation, COW),
// which sits on internal/buffer + internal/wal (logged metadata), which sit
// on internal/blockdev. Episode implements the full VFS+ interface of
// internal/vfs, including the volume and ACL extensions.
package episode

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"decorum/internal/anode"
	"decorum/internal/blockdev"
	"decorum/internal/buffer"
	"decorum/internal/fs"
	"decorum/internal/obs"
	"decorum/internal/vfs"
	"decorum/internal/wal"
)

// RegistryID is the well-known anode holding the volume registry; it is
// the first anode allocated at Format time.
const RegistryID anode.ID = 1

// DefaultLogBlocks is the log size used when the caller passes zero.
const DefaultLogBlocks = 256

// DefaultPoolSize is the buffer cache capacity used when the caller
// passes zero.
const DefaultPoolSize = 1024

// DefaultCheckpointInterval is the batch-commit period used when the
// caller passes zero: the paper's "30-second batch commit" (§2.2).
const DefaultCheckpointInterval = 30 * time.Second

// Options configures Format and Open.
type Options struct {
	LogBlocks int64 // log region size; DefaultLogBlocks if zero
	PoolSize  int   // buffer cache capacity; DefaultPoolSize if zero
	Clock     func() int64
	// CheckpointInterval is the period of the background batch-commit
	// daemon. Zero means DefaultCheckpointInterval; negative disables the
	// daemon (checkpoints then happen only on Sync/Close or log pressure).
	CheckpointInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.LogBlocks == 0 {
		o.LogBlocks = DefaultLogBlocks
	}
	if o.PoolSize == 0 {
		o.PoolSize = DefaultPoolSize
	}
	if o.CheckpointInterval == 0 {
		o.CheckpointInterval = DefaultCheckpointInterval
	}
	return o
}

// volumeRecord is the registry entry for one volume.
type volumeRecord struct {
	ID        fs.VolumeID
	Name      string
	ReadOnly  bool
	CloneOf   fs.VolumeID
	RootAnode anode.ID
	Quota     int64
	// Offline marks a volume temporarily unavailable (during moves).
	Offline bool
}

// Aggregate is one formatted device holding volumes.
type Aggregate struct {
	store *anode.Store
	log   *wal.Log
	pool  *buffer.Pool

	mu      sync.Mutex // registry + mounted-volume table
	reg     map[fs.VolumeID]*volumeRecord
	mounted map[fs.VolumeID]*Volume

	// Background batch-commit daemon (§2.2's periodic commit). ckptStop
	// is closed exactly once by Close; ckptDone is closed by the daemon
	// on exit.
	ckptStop chan struct{}
	ckptDone chan struct{}
	ckptOnce sync.Once

	ckptErr error // guarded by mu (last background checkpoint failure)

	// scrubErrors counts integrity-scrub mismatches; nil (a no-op) until
	// Instrument attaches it.
	scrubErrors *obs.Counter

	// RecoveryResult reports what log replay did at Open, for tools and
	// experiments (zero value after Format).
	RecoveryResult wal.RecoveryResult
}

// Instrument attaches the aggregate's log and buffer-pool metrics to reg
// (the "wal." and "buffer." families), plus a live volume-table view.
func (g *Aggregate) Instrument(reg *obs.Registry) {
	g.log.Instrument(reg)
	g.pool.Instrument(reg)
	g.scrubErrors = reg.Counter("integrity.scrub_errors")
	reg.AttachInfo("episode.volumes", func() any {
		vols, err := g.Volumes()
		if err != nil {
			return map[string]string{"error": err.Error()}
		}
		return vols
	})
}

// Format initializes dev as an empty aggregate and returns it opened.
func Format(dev blockdev.Device, opts Options) (*Aggregate, error) {
	opts = opts.withDefaults()
	if _, err := anode.Format(dev, opts.LogBlocks); err != nil {
		return nil, err
	}
	agg, err := open(dev, opts, false)
	if err != nil {
		return nil, err
	}
	// Allocate the registry anode; it must land at RegistryID.
	tx := agg.store.Begin()
	a, err := agg.store.Alloc(tx, anode.TypeMeta, 0, 0, fs.SuperUser, 0)
	if err != nil {
		return nil, err
	}
	if a.ID != RegistryID {
		return nil, fmt.Errorf("episode: registry landed at anode %d, want %d", a.ID, RegistryID)
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	if err := agg.saveRegistry(); err != nil {
		return nil, err
	}
	if err := agg.Sync(); err != nil {
		return nil, err
	}
	return agg, nil
}

// Open attaches to a formatted aggregate, replaying the log first: this is
// the fast restart the paper promises (recovery work proportional to the
// active log, §2.2).
func Open(dev blockdev.Device, opts Options) (*Aggregate, error) {
	return open(dev, opts.withDefaults(), true)
}

func open(dev blockdev.Device, opts Options, recover bool) (*Aggregate, error) {
	sb, err := anode.ReadSuperblock(dev)
	if err != nil {
		return nil, err
	}
	l, err := wal.Open(dev, sb.LogStart, sb.LogBlocks)
	if err != nil {
		return nil, err
	}
	var res wal.RecoveryResult
	if recover {
		res, err = l.Recover()
		if err != nil {
			return nil, fmt.Errorf("episode: log replay: %w", err)
		}
	}
	pool := buffer.NewPool(dev, l, opts.PoolSize)
	store, err := anode.Open(pool)
	if err != nil {
		return nil, err
	}
	if opts.Clock != nil {
		store.Clock = opts.Clock
	}
	agg := &Aggregate{
		store:          store,
		log:            l,
		pool:           pool,
		reg:            make(map[fs.VolumeID]*volumeRecord),
		mounted:        make(map[fs.VolumeID]*Volume),
		RecoveryResult: res,
	}
	if recover {
		if err := agg.loadRegistry(); err != nil {
			return nil, err
		}
	}
	if opts.CheckpointInterval > 0 {
		agg.ckptStop = make(chan struct{})
		agg.ckptDone = make(chan struct{})
		go agg.checkpointDaemon(opts.CheckpointInterval)
	}
	return agg, nil
}

// checkpointDaemon is the paper's batch commit (§2.2): every interval it
// destages dirty buffers and advances the log tail, so foreground
// operations rarely hit a full log and never pay a synchronous
// checkpoint stall themselves. Pool.Checkpoint is safe against
// concurrent foreground transactions, so no aggregate lock is held.
func (g *Aggregate) checkpointDaemon(interval time.Duration) {
	defer close(g.ckptDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-g.ckptStop:
			return
		case <-t.C:
			if g.log.Used() == 0 {
				continue // nothing to commit; skip the device syncs
			}
			if err := g.pool.Checkpoint(); err != nil {
				g.mu.Lock()
				g.ckptErr = err
				g.mu.Unlock()
			}
		}
	}
}

// CheckpointErr reports the most recent background checkpoint failure,
// if any. Close also returns it.
func (g *Aggregate) CheckpointErr() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ckptErr
}

// Store exposes the anode layer (for tools and tests).
func (g *Aggregate) Store() *anode.Store { return g.store }

// Log exposes the aggregate's transaction log.
func (g *Aggregate) Log() *wal.Log { return g.log }

// Sync checkpoints everything: metadata durable, log empty.
func (g *Aggregate) Sync() error { return g.pool.Checkpoint() }

// Close stops the checkpoint daemon, flushes, and detaches (the device
// stays open; the caller owns it). It is safe to call more than once.
func (g *Aggregate) Close() error {
	if g.ckptStop != nil {
		g.ckptOnce.Do(func() { close(g.ckptStop) })
		<-g.ckptDone
	}
	if err := g.Sync(); err != nil {
		return err
	}
	return g.CheckpointErr()
}

// Statfs reports aggregate capacity.
func (g *Aggregate) Statfs() (fs.Statfs, error) {
	sb := g.store.Superblock()
	files, err := g.store.AnodesInUse()
	if err != nil {
		return fs.Statfs{}, err
	}
	return fs.Statfs{
		BlockSize:   sb.BlockSize,
		TotalBlocks: sb.TotalBlocks,
		FreeBlocks:  g.store.FreeBlocks(),
		Files:       files,
	}, nil
}

// loadRegistry reads the registry anode.
func (g *Aggregate) loadRegistry() error {
	a, err := g.store.Get(RegistryID)
	if err != nil {
		return fmt.Errorf("episode: no volume registry: %w", err)
	}
	if a.Length == 0 {
		return nil
	}
	raw := make([]byte, a.Length)
	if _, err := g.store.ReadAt(RegistryID, raw, 0); err != nil {
		return err
	}
	var recs []volumeRecord
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&recs); err != nil {
		return fmt.Errorf("episode: corrupt volume registry: %w", err)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := range recs {
		rec := recs[i]
		g.reg[rec.ID] = &rec
	}
	return nil
}

// saveRegistry rewrites the registry anode. Callers hold no locks; the
// registry is small and rewritten wholesale.
func (g *Aggregate) saveRegistry() error {
	g.mu.Lock()
	recs := make([]volumeRecord, 0, len(g.reg))
	for _, r := range g.reg {
		recs = append(recs, *r)
	}
	g.mu.Unlock()
	// Deterministic order keeps dumps and golden tests stable.
	for i := 0; i < len(recs); i++ {
		for j := i + 1; j < len(recs); j++ {
			if recs[j].ID < recs[i].ID {
				recs[i], recs[j] = recs[j], recs[i]
			}
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(recs); err != nil {
		return err
	}
	tx := g.store.Begin()
	if err := g.store.Truncate(tx, RegistryID, 0); err != nil {
		abort(tx)
		return err
	}
	if _, err := g.store.WriteAt(tx, RegistryID, buf.Bytes(), 0); err != nil {
		abort(tx)
		return err
	}
	return tx.CommitDurable()
}

// freshVolID allocates a locally unused volume ID. The counter can lag
// behind externally assigned (VLDB) IDs already in the registry, so it
// skips collisions.
func (g *Aggregate) freshVolID(tx *buffer.Tx) (fs.VolumeID, error) {
	for {
		id, err := g.store.NextVolID(tx)
		if err != nil {
			return 0, err
		}
		g.mu.Lock()
		_, taken := g.reg[id]
		g.mu.Unlock()
		if !taken {
			return id, nil
		}
	}
}

// record returns a copy of the registry record for id.
func (g *Aggregate) record(id fs.VolumeID) (volumeRecord, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.reg[id]
	if !ok {
		return volumeRecord{}, fmt.Errorf("%w: volume %d", fs.ErrNotExist, id)
	}
	return *r, nil
}

func (r volumeRecord) info() vfs.VolumeInfo {
	return vfs.VolumeInfo{
		ID:        r.ID,
		Name:      r.Name,
		ReadOnly:  r.ReadOnly,
		CloneOf:   r.CloneOf,
		RootVnode: uint64(r.RootAnode),
		Quota:     r.Quota,
	}
}

// CreateVolume implements vfs.VolumeOps: a fresh volume with an empty root
// directory and a locally allocated ID. Multi-server cells allocate IDs
// cell-wide through the VLDB and use CreateVolumeWithID instead.
func (g *Aggregate) CreateVolume(name string, quota int64) (vfs.VolumeInfo, error) {
	return g.createVolume(name, quota, 0)
}

// CreateVolumeWithID creates a volume under an externally assigned
// (cell-wide) ID.
func (g *Aggregate) CreateVolumeWithID(name string, quota int64, id fs.VolumeID) (vfs.VolumeInfo, error) {
	if id == 0 {
		return vfs.VolumeInfo{}, fmt.Errorf("%w: zero volume id", fs.ErrInvalid)
	}
	return g.createVolume(name, quota, id)
}

func (g *Aggregate) createVolume(name string, quota int64, id fs.VolumeID) (vfs.VolumeInfo, error) {
	if name == "" {
		return vfs.VolumeInfo{}, fmt.Errorf("%w: empty volume name", fs.ErrInvalid)
	}
	g.mu.Lock()
	for _, r := range g.reg {
		if r.Name == name {
			g.mu.Unlock()
			return vfs.VolumeInfo{}, fmt.Errorf("%w: volume %q", fs.ErrExist, name)
		}
	}
	if _, dup := g.reg[id]; dup && id != 0 {
		g.mu.Unlock()
		return vfs.VolumeInfo{}, fmt.Errorf("%w: volume id %d", fs.ErrExist, id)
	}
	g.mu.Unlock()

	tx := g.store.Begin()
	volID := id
	if volID == 0 {
		var err error
		volID, err = g.freshVolID(tx)
		if err != nil {
			abort(tx)
			return vfs.VolumeInfo{}, err
		}
	}
	root, err := g.store.Alloc(tx, anode.TypeDir, volID, 0o755, fs.SuperUser, 0)
	if err != nil {
		abort(tx)
		return vfs.VolumeInfo{}, err
	}
	if err := tx.Commit(); err != nil {
		return vfs.VolumeInfo{}, err
	}
	rec := &volumeRecord{
		ID:        volID,
		Name:      name,
		RootAnode: root.ID,
		Quota:     quota,
	}
	g.mu.Lock()
	g.reg[volID] = rec
	g.mu.Unlock()
	if err := g.saveRegistry(); err != nil {
		return vfs.VolumeInfo{}, err
	}
	return rec.info(), nil
}

// Volumes implements vfs.VolumeOps.
func (g *Aggregate) Volumes() ([]vfs.VolumeInfo, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]vfs.VolumeInfo, 0, len(g.reg))
	for _, r := range g.reg {
		out = append(out, r.info())
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].ID < out[i].ID {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out, nil
}

// VolumeByName implements vfs.VolumeOps.
func (g *Aggregate) VolumeByName(name string) (vfs.VolumeInfo, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, r := range g.reg {
		if r.Name == name {
			return r.info(), nil
		}
	}
	return vfs.VolumeInfo{}, fmt.Errorf("%w: volume %q", fs.ErrNotExist, name)
}

// Mount implements vfs.VolumeOps: returns the FileSystem for a volume.
// Mounting is idempotent; all mounts share one Volume object.
func (g *Aggregate) Mount(id fs.VolumeID) (vfs.FileSystem, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.reg[id]
	if !ok {
		return nil, fmt.Errorf("%w: volume %d", fs.ErrNotExist, id)
	}
	if r.Offline {
		return nil, fmt.Errorf("%w: volume %d", fs.ErrOffline, id)
	}
	if v, ok := g.mounted[id]; ok {
		return v, nil
	}
	v := &Volume{
		agg:    g,
		id:     id,
		vnodes: make(map[anode.ID]*Vnode),
	}
	g.mounted[id] = v
	return v, nil
}

// MountMaintenance returns a maintenance-mode mount: the volume is
// accessible (and writable) through it regardless of the offline and
// read-only flags. Volume utilities use it while the volume is offline to
// everyone else, which is how a replica is updated atomically from its
// readers' point of view (§3.8).
func (g *Aggregate) MountMaintenance(id fs.VolumeID) (vfs.FileSystem, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.reg[id]; !ok {
		return nil, fmt.Errorf("%w: volume %d", fs.ErrNotExist, id)
	}
	return &Volume{
		agg:    g,
		id:     id,
		maint:  true,
		vnodes: make(map[anode.ID]*Vnode),
	}, nil
}

// SetReadOnly flips a volume's read-only flag. The replication server
// uses it to apply incremental updates to a replica volume that is
// otherwise immutable (§3.8).
func (g *Aggregate) SetReadOnly(id fs.VolumeID, ro bool) error {
	g.mu.Lock()
	r, ok := g.reg[id]
	if !ok {
		g.mu.Unlock()
		return fmt.Errorf("%w: volume %d", fs.ErrNotExist, id)
	}
	r.ReadOnly = ro
	g.mu.Unlock()
	return g.saveRegistry()
}

// SetOffline marks a volume unavailable (used during moves); operations on
// it block or fail with ErrOffline until it returns.
func (g *Aggregate) SetOffline(id fs.VolumeID, offline bool) error {
	g.mu.Lock()
	r, ok := g.reg[id]
	if !ok {
		g.mu.Unlock()
		return fmt.Errorf("%w: volume %d", fs.ErrNotExist, id)
	}
	r.Offline = offline
	g.mu.Unlock()
	return g.saveRegistry()
}

// DeleteVolume implements vfs.VolumeOps: frees every anode belonging to
// the volume, in bounded transactions.
func (g *Aggregate) DeleteVolume(id fs.VolumeID) error {
	g.mu.Lock()
	if _, ok := g.reg[id]; !ok {
		g.mu.Unlock()
		return fmt.Errorf("%w: volume %d", fs.ErrNotExist, id)
	}
	delete(g.reg, id)
	delete(g.mounted, id)
	g.mu.Unlock()
	if err := g.saveRegistry(); err != nil {
		return err
	}
	maxID, err := g.store.MaxID()
	if err != nil {
		return err
	}
	for aid := anode.ID(2); aid < maxID; aid++ {
		a, err := g.store.Get(aid)
		if err != nil {
			continue // free slot
		}
		if a.Volume != id {
			continue
		}
		if err := g.freeAnodeBounded(aid); err != nil {
			return err
		}
	}
	return nil
}

// freeAnodeBounded truncates (in bounded steps) and frees one anode.
func (g *Aggregate) freeAnodeBounded(aid anode.ID) error {
	const stepBytes = 16 * 1024
	for {
		a, err := g.store.Get(aid)
		if err != nil {
			return err
		}
		if a.Length == 0 {
			break
		}
		next := a.Length - stepBytes
		if next < 0 {
			next = 0
		}
		tx := g.store.Begin()
		if err := g.store.Truncate(tx, aid, next); err != nil {
			abort(tx)
			return err
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	tx := g.store.Begin()
	if err := g.store.Free(tx, aid); err != nil {
		abort(tx)
		return err
	}
	return tx.Commit()
}
