package episode

import (
	"testing"
	"time"

	"decorum/internal/blockdev"
)

// TestCheckpointDaemonDrainsLog verifies the background batch commit:
// after foreground transactions fill the log, the daemon destages and
// advances the tail without any explicit Sync.
func TestCheckpointDaemonDrainsLog(t *testing.T) {
	dev := blockdev.NewMem(testBS, testDev)
	opts := testOpts
	opts.CheckpointInterval = 5 * time.Millisecond
	agg, err := Format(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	fsys, _ := newVol(t, agg, "daemon")
	root, err := fsys.Root()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		name := string(rune('a' + i))
		if _, err := root.Create(su(), name, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if agg.Log().Used() == 0 {
		t.Fatal("expected log activity before daemon runs")
	}
	deadline := time.Now().Add(2 * time.Second)
	for agg.Log().Used() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never drained the log: used=%d", agg.Log().Used())
		}
		time.Sleep(time.Millisecond)
	}
	if err := agg.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen without replay work: the checkpoint made metadata durable.
	agg2, err := Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := agg2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	info, err := agg2.VolumeByName("daemon")
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := agg2.Mount(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	root2, err := fs2.Root()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := root2.Lookup(su(), "a"); err != nil {
		t.Fatalf("file created before daemon checkpoint missing after reopen: %v", err)
	}
}

// TestCheckpointDaemonConcurrentWrites races the daemon against
// foreground transactions: the tail must never advance past a record
// still needed to redo a dirty buffer (minRedoLSN), so everything
// committed must survive a reopen.
func TestCheckpointDaemonConcurrentWrites(t *testing.T) {
	dev := blockdev.NewMem(testBS, testDev)
	opts := testOpts
	opts.CheckpointInterval = time.Millisecond
	agg, err := Format(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	fsys, _ := newVol(t, agg, "busy")
	root, err := fsys.Root()
	if err != nil {
		t.Fatal(err)
	}
	const files = 40
	for i := 0; i < files; i++ {
		name := fileName(i)
		f, err := root.Create(su(), name, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(su(), []byte(name), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := agg.Close(); err != nil {
		t.Fatal(err)
	}
	agg2, err := Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := agg2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	info, err := agg2.VolumeByName("busy")
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := agg2.Mount(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	root2, err := fs2.Root()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < files; i++ {
		if _, err := root2.Lookup(su(), fileName(i)); err != nil {
			t.Fatalf("file %s missing after reopen: %v", fileName(i), err)
		}
	}
}

// TestCheckpointDaemonDisabled checks that a negative interval means no
// daemon and Close still works (twice).
func TestCheckpointDaemonDisabled(t *testing.T) {
	dev := blockdev.NewMem(testBS, testDev)
	opts := testOpts
	opts.CheckpointInterval = -1
	agg, err := Format(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if agg.ckptStop != nil {
		t.Fatal("daemon started despite negative interval")
	}
	newVol(t, agg, "quiet")
	if err := agg.Close(); err != nil {
		t.Fatal(err)
	}
	if err := agg.Close(); err != nil {
		t.Fatal(err)
	}
}

func fileName(i int) string {
	return "f" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}
