package episode

import (
	"fmt"
	"sync"

	"decorum/internal/anode"
	"decorum/internal/buffer"
	"decorum/internal/fs"
	"decorum/internal/vfs"
)

// Volume is one mounted volume: the vfs.FileSystem implementation.
type Volume struct {
	agg *Aggregate
	id  fs.VolumeID
	// maint marks a maintenance mount (MountMaintenance): the offline and
	// read-only gates are bypassed so volume utilities (the replication
	// server, the salvager) can operate on a volume that is unavailable
	// to everyone else.
	maint bool

	mu     sync.Mutex
	vnodes map[anode.ID]*Vnode
}

// ID returns the volume's identity.
func (v *Volume) ID() fs.VolumeID { return v.id }

// Aggregate returns the hosting aggregate.
func (v *Volume) Aggregate() *Aggregate { return v.agg }

// vnode returns the (cached) vnode handle for an anode, stamping the
// expected uniquifier for staleness detection.
func (v *Volume) vnode(id anode.ID, uniq uint64) *Vnode {
	v.mu.Lock()
	defer v.mu.Unlock()
	if vn, ok := v.vnodes[id]; ok {
		if vn.uniq == uniq {
			return vn
		}
		// Slot reincarnated: replace the handle.
	}
	vn := &Vnode{vol: v, id: id, uniq: uniq}
	v.vnodes[id] = vn
	return vn
}

// Root implements vfs.FileSystem.
func (v *Volume) Root() (vfs.Vnode, error) {
	rec, err := v.agg.record(v.id)
	if err != nil {
		return nil, err
	}
	a, err := v.agg.store.Get(rec.RootAnode)
	if err != nil {
		return nil, err
	}
	return v.vnode(rec.RootAnode, a.Uniq), nil
}

// Get implements vfs.FileSystem: FID -> vnode, verifying the uniquifier.
func (v *Volume) Get(fid fs.FID) (vfs.Vnode, error) {
	if fid.Volume != v.id {
		return nil, fmt.Errorf("%w: fid %v not in volume %d", fs.ErrStale, fid, v.id)
	}
	a, err := v.agg.store.Get(anode.ID(fid.Vnode))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", fs.ErrStale, fid)
	}
	if a.Volume != v.id || a.Uniq != fid.Uniq {
		return nil, fmt.Errorf("%w: %v", fs.ErrStale, fid)
	}
	return v.vnode(anode.ID(fid.Vnode), a.Uniq), nil
}

// Statfs implements vfs.FileSystem.
func (v *Volume) Statfs() (fs.Statfs, error) { return v.agg.Statfs() }

// Sync implements vfs.FileSystem.
func (v *Volume) Sync() error { return v.agg.Sync() }

// readOnly reports whether the volume rejects mutation.
func (v *Volume) readOnly() bool {
	if v.maint {
		return false
	}
	rec, err := v.agg.record(v.id)
	return err == nil && rec.ReadOnly
}

// offline reports whether the volume is temporarily unavailable.
func (v *Volume) offline() bool {
	if v.maint {
		return false
	}
	rec, err := v.agg.record(v.id)
	return err != nil || rec.Offline
}

// Vnode is one Episode file/directory/symlink handle.
//
// Locking: each vnode carries one RWMutex serializing operations on it.
// Two-vnode operations (rename, link) take both locks in anode-ID order.
// This is the physical file system's internal hierarchy; the distributed
// two-level client locks of §6 live in internal/client.
type Vnode struct {
	vol  *Volume
	id   anode.ID
	uniq uint64
	mu   sync.RWMutex
}

// FID implements vfs.Vnode.
func (n *Vnode) FID() fs.FID {
	return fs.FID{Volume: n.vol.id, Vnode: uint64(n.id), Uniq: n.uniq}
}

// load fetches the descriptor, verifying the handle is not stale.
func (n *Vnode) load() (anode.Anode, error) {
	if n.vol.offline() {
		return anode.Anode{}, fs.ErrOffline
	}
	a, err := n.vol.agg.store.Get(n.id)
	if err != nil {
		return anode.Anode{}, fmt.Errorf("%w: anode %d", fs.ErrStale, n.id)
	}
	if a.Volume != n.vol.id || a.Uniq != n.uniq {
		return anode.Anode{}, fmt.Errorf("%w: anode %d reincarnated", fs.ErrStale, n.id)
	}
	return a, nil
}

// rights evaluates the caller's rights on a.
func (n *Vnode) rights(ctx *vfs.Context, a anode.Anode) (fs.Rights, error) {
	acl, err := n.vol.agg.loadACL(a)
	if err != nil {
		return 0, err
	}
	return acl.Permits(ctx.User, ctx.Groups), nil
}

func (n *Vnode) require(ctx *vfs.Context, a anode.Anode, want fs.Rights) error {
	r, err := n.rights(ctx, a)
	if err != nil {
		return err
	}
	if !r.Has(want) {
		return fmt.Errorf("%w: need %v, have %v", fs.ErrPerm, want, r)
	}
	return nil
}

func (n *Vnode) mutable() error {
	if n.vol.readOnly() {
		return fs.ErrReadOnly
	}
	return nil
}

func attrOf(a anode.Anode) fs.Attr {
	blocks := (a.Length + 511) / 512
	return fs.Attr{
		FID:         fs.FID{Volume: a.Volume, Vnode: uint64(a.ID), Uniq: a.Uniq},
		Type:        a.Type.FileType(),
		Mode:        a.Mode,
		Nlink:       a.Nlink,
		Owner:       a.Owner,
		Group:       a.Group,
		Length:      a.Length,
		Blocks:      blocks,
		Atime:       a.Atime,
		Mtime:       a.Mtime,
		Ctime:       a.Ctime,
		DataVersion: a.DataVer,
	}
}

// Attr implements vfs.Vnode.
func (n *Vnode) Attr(ctx *vfs.Context) (fs.Attr, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	a, err := n.load()
	if err != nil {
		return fs.Attr{}, err
	}
	return attrOf(a), nil
}

// SetAttr implements vfs.Vnode.
func (n *Vnode) SetAttr(ctx *vfs.Context, ch fs.AttrChange) (fs.Attr, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.mutable(); err != nil {
		return fs.Attr{}, err
	}
	a, err := n.load()
	if err != nil {
		return fs.Attr{}, err
	}
	// Ownership/mode changes need admin rights; size/time changes need
	// write rights.
	if ch.Mode != nil || ch.Owner != nil || ch.Group != nil {
		if ctx.User != a.Owner {
			if err := n.require(ctx, a, fs.RightAdmin); err != nil {
				return fs.Attr{}, err
			}
		}
	}
	if ch.Length != nil || ch.Mtime != nil || ch.Atime != nil {
		if err := n.require(ctx, a, fs.RightWrite); err != nil {
			return fs.Attr{}, err
		}
	}
	if ch.Length != nil {
		if a.Type != anode.TypeFile {
			return fs.Attr{}, fs.ErrIsDir
		}
		oldLen := a.Length
		if err := n.truncateBounded(*ch.Length); err != nil {
			return fs.Attr{}, err
		}
		if err := n.fixHashTail(oldLen, *ch.Length); err != nil {
			return fs.Attr{}, err
		}
		a, err = n.load()
		if err != nil {
			return fs.Attr{}, err
		}
	}
	if ch.Mode != nil {
		a.Mode = *ch.Mode
	}
	if ch.Owner != nil {
		a.Owner = *ch.Owner
	}
	if ch.Group != nil {
		a.Group = *ch.Group
	}
	if ch.Atime != nil {
		a.Atime = *ch.Atime
	}
	if ch.Mtime != nil {
		a.Mtime = *ch.Mtime
	}
	a.Ctime = n.vol.agg.store.Clock()
	tx := n.vol.agg.store.Begin()
	if err := n.vol.agg.store.Put(tx, a); err != nil {
		abort(tx)
		return fs.Attr{}, err
	}
	if err := tx.Commit(); err != nil {
		return fs.Attr{}, err
	}
	a, err = n.load()
	if err != nil {
		return fs.Attr{}, err
	}
	return attrOf(a), nil
}

// truncateBounded shrinks or extends in short transactions, each leaving
// the file consistent (§2.2). Caller holds the vnode lock.
func (n *Vnode) truncateBounded(newLen int64) error {
	const stepBytes = 16 * 1024
	st := n.vol.agg.store
	for {
		a, err := n.load()
		if err != nil {
			return err
		}
		target := newLen
		if a.Length > newLen && a.Length-newLen > stepBytes {
			target = a.Length - stepBytes
		}
		tx := st.Begin()
		if err := st.Truncate(tx, n.id, target); err != nil {
			abort(tx)
			return err
		}
		if err := tx.Commit(); err != nil {
			return err
		}
		if target == newLen {
			return nil
		}
	}
}

// Read implements vfs.Vnode.
func (n *Vnode) Read(ctx *vfs.Context, p []byte, off int64) (int, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	a, err := n.load()
	if err != nil {
		return 0, err
	}
	if a.Type == anode.TypeDir {
		return 0, fs.ErrIsDir
	}
	if err := n.require(ctx, a, fs.RightRead); err != nil {
		return 0, err
	}
	return n.vol.agg.store.ReadAt(n.id, p, off)
}

// Write implements vfs.Vnode. Large writes are split into bounded
// transactions so the log never sees a long-lived transaction.
func (n *Vnode) Write(ctx *vfs.Context, p []byte, off int64) (int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.mutable(); err != nil {
		return 0, err
	}
	a, err := n.load()
	if err != nil {
		return 0, err
	}
	if a.Type == anode.TypeDir {
		return 0, fs.ErrIsDir
	}
	if a.Type != anode.TypeFile {
		return 0, fs.ErrInvalid
	}
	if err := n.require(ctx, a, fs.RightWrite); err != nil {
		return 0, err
	}
	st := n.vol.agg.store
	const step = 16 * 1024
	oldLen := a.Length
	written := 0
	for written < len(p) {
		chunk := len(p) - written
		if chunk > step {
			chunk = step
		}
		tx := st.Begin()
		nn, err := st.WriteAt(tx, n.id, p[written:written+chunk], off+int64(written))
		if err != nil {
			abort(tx)
			return written, err
		}
		// Stamp times in the same transaction.
		cur, err := st.Get(n.id)
		if err != nil {
			abort(tx)
			return written, err
		}
		now := st.Clock()
		cur.Mtime = now
		cur.Ctime = now
		if err := st.Put(tx, cur); err != nil {
			abort(tx)
			return written, err
		}
		if err := tx.Commit(); err != nil {
			return written, err
		}
		written += nn
	}
	// Bring the chunk hash tree in step with the new bytes. The data is
	// already durable-on-commit; a crash before the leaf commit leaves a
	// detectable mismatch for the scrub, never a silent one.
	if err := n.updateHashLocked(oldLen, off, written); err != nil {
		return written, err
	}
	return written, nil
}

// Lookup implements vfs.Vnode.
func (n *Vnode) Lookup(ctx *vfs.Context, name string) (vfs.Vnode, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	a, err := n.load()
	if err != nil {
		return nil, err
	}
	if a.Type != anode.TypeDir {
		return nil, fs.ErrNotDir
	}
	if err := n.require(ctx, a, fs.RightExecute); err != nil {
		return nil, err
	}
	e, err := n.vol.agg.dirLookup(n.id, name)
	if err != nil {
		return nil, err
	}
	return n.vol.vnode(e.id, e.uniq), nil
}

// create is the shared path for Create/Mkdir/Symlink.
func (n *Vnode) create(ctx *vfs.Context, name string, typ anode.Type, mode fs.Mode, target string) (vfs.Vnode, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.mutable(); err != nil {
		return nil, err
	}
	a, err := n.load()
	if err != nil {
		return nil, err
	}
	if a.Type != anode.TypeDir {
		return nil, fs.ErrNotDir
	}
	if err := n.require(ctx, a, fs.RightInsert); err != nil {
		return nil, err
	}
	if _, err := n.vol.agg.dirLookup(n.id, name); err == nil {
		return nil, fmt.Errorf("%w: %q", fs.ErrExist, name)
	}
	st := n.vol.agg.store
	tx := st.Begin()
	child, err := st.Alloc(tx, typ, n.vol.id, mode, ctx.User, groupOf(ctx))
	if err != nil {
		abort(tx)
		return nil, err
	}
	if typ == anode.TypeDir {
		child.Parent = n.id
		if err := st.Put(tx, child); err != nil {
			abort(tx)
			return nil, err
		}
	}
	if typ == anode.TypeSymlink {
		if len(target) <= anode.InlineMax {
			if err := st.SetInline(tx, child.ID, []byte(target)); err != nil {
				abort(tx)
				return nil, err
			}
		} else {
			if _, err := st.WriteAt(tx, child.ID, []byte(target), 0); err != nil {
				abort(tx)
				return nil, err
			}
		}
	}
	if err := n.vol.agg.dirInsert(tx, n.id, dirent{
		typ: typ, id: child.ID, uniq: child.Uniq, name: name,
	}); err != nil {
		abort(tx)
		return nil, err
	}
	if err := n.touchDir(tx); err != nil {
		abort(tx)
		return nil, err
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return n.vol.vnode(child.ID, child.Uniq), nil
}

func groupOf(ctx *vfs.Context) fs.GroupID {
	if len(ctx.Groups) > 0 {
		return ctx.Groups[0]
	}
	return 0
}

// touchDir stamps mtime/ctime on the directory within tx.
func (n *Vnode) touchDir(tx *buffer.Tx) error {
	st := n.vol.agg.store
	cur, err := st.Get(n.id)
	if err != nil {
		return err
	}
	now := st.Clock()
	cur.Mtime = now
	cur.Ctime = now
	return st.Put(tx, cur)
}

// Create implements vfs.Vnode.
func (n *Vnode) Create(ctx *vfs.Context, name string, mode fs.Mode) (vfs.Vnode, error) {
	return n.create(ctx, name, anode.TypeFile, mode, "")
}

// Mkdir implements vfs.Vnode.
func (n *Vnode) Mkdir(ctx *vfs.Context, name string, mode fs.Mode) (vfs.Vnode, error) {
	return n.create(ctx, name, anode.TypeDir, mode, "")
}

// Symlink implements vfs.Vnode.
func (n *Vnode) Symlink(ctx *vfs.Context, name, target string) (vfs.Vnode, error) {
	return n.create(ctx, name, anode.TypeSymlink, 0o777, target)
}

// Readlink implements vfs.Vnode.
func (n *Vnode) Readlink(ctx *vfs.Context) (string, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	a, err := n.load()
	if err != nil {
		return "", err
	}
	if a.Type != anode.TypeSymlink {
		return "", fs.ErrInvalid
	}
	buf := make([]byte, a.Length)
	if _, err := n.vol.agg.store.ReadAt(n.id, buf, 0); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Link implements vfs.Vnode: a new name for target in directory n.
func (n *Vnode) Link(ctx *vfs.Context, name string, target vfs.Vnode) error {
	tv, ok := target.(*Vnode)
	if !ok || tv.vol != n.vol {
		return fmt.Errorf("%w: cross-volume link", fs.ErrInvalid)
	}
	first, second := n, tv
	if first.id > second.id {
		first, second = second, first
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	if first != second {
		second.mu.Lock()
		defer second.mu.Unlock()
	}
	if err := n.mutable(); err != nil {
		return err
	}
	dir, err := n.load()
	if err != nil {
		return err
	}
	if dir.Type != anode.TypeDir {
		return fs.ErrNotDir
	}
	if err := n.require(ctx, dir, fs.RightInsert); err != nil {
		return err
	}
	ta, err := tv.load()
	if err != nil {
		return err
	}
	if ta.Type == anode.TypeDir {
		return fmt.Errorf("%w: hard link to directory", fs.ErrIsDir)
	}
	if _, err := n.vol.agg.dirLookup(n.id, name); err == nil {
		return fmt.Errorf("%w: %q", fs.ErrExist, name)
	}
	st := n.vol.agg.store
	tx := st.Begin()
	ta.Nlink++
	ta.Ctime = st.Clock()
	if err := st.Put(tx, ta); err != nil {
		abort(tx)
		return err
	}
	if err := n.vol.agg.dirInsert(tx, n.id, dirent{
		typ: ta.Type, id: ta.ID, uniq: ta.Uniq, name: name,
	}); err != nil {
		abort(tx)
		return err
	}
	if err := n.touchDir(tx); err != nil {
		abort(tx)
		return err
	}
	return tx.Commit()
}

// Remove implements vfs.Vnode: unlink a non-directory.
func (n *Vnode) Remove(ctx *vfs.Context, name string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.removeLocked(ctx, name, false)
}

// Rmdir implements vfs.Vnode: remove an empty subdirectory.
func (n *Vnode) Rmdir(ctx *vfs.Context, name string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.removeLocked(ctx, name, true)
}

func (n *Vnode) removeLocked(ctx *vfs.Context, name string, wantDir bool) error {
	if err := n.mutable(); err != nil {
		return err
	}
	dir, err := n.load()
	if err != nil {
		return err
	}
	if dir.Type != anode.TypeDir {
		return fs.ErrNotDir
	}
	if err := n.require(ctx, dir, fs.RightDelete); err != nil {
		return err
	}
	e, err := n.vol.agg.dirLookup(n.id, name)
	if err != nil {
		return err
	}
	isDir := e.typ == anode.TypeDir
	if wantDir && !isDir {
		return fs.ErrNotDir
	}
	if !wantDir && isDir {
		return fs.ErrIsDir
	}
	if isDir {
		empty, err := n.vol.agg.dirEmpty(e.id)
		if err != nil {
			return err
		}
		if !empty {
			return fs.ErrNotEmpty
		}
	}
	st := n.vol.agg.store
	tx := st.Begin()
	if err := n.vol.agg.dirRemove(tx, n.id, e); err != nil {
		abort(tx)
		return err
	}
	child, err := st.Get(e.id)
	if err != nil {
		abort(tx)
		return err
	}
	child.Nlink--
	child.Ctime = st.Clock()
	lastLink := child.Nlink == 0 || isDir
	if !lastLink {
		if err := st.Put(tx, child); err != nil {
			abort(tx)
			return err
		}
	}
	if err := n.touchDir(tx); err != nil {
		abort(tx)
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	if lastLink {
		// Reclaim storage in bounded transactions. A crash in this
		// window leaves an orphan anode, which the salvager reclaims;
		// the namespace is already consistent.
		if child.ACL != 0 {
			if err := n.vol.agg.freeAnodeBounded(child.ACL); err != nil {
				return err
			}
		}
		if child.Hash != 0 {
			if err := n.vol.agg.freeAnodeBounded(child.Hash); err != nil {
				return err
			}
		}
		if err := n.vol.agg.freeAnodeBounded(e.id); err != nil {
			return err
		}
		n.vol.mu.Lock()
		delete(n.vol.vnodes, e.id)
		n.vol.mu.Unlock()
	}
	return nil
}

// Rename implements vfs.Vnode (same-volume only, as in the paper's world
// where cross-volume moves are volume operations).
func (n *Vnode) Rename(ctx *vfs.Context, oldName string, newDir vfs.Vnode, newName string) error {
	nd, ok := newDir.(*Vnode)
	if !ok || nd.vol != n.vol {
		return fmt.Errorf("%w: cross-volume rename", fs.ErrInvalid)
	}
	if err := n.mutable(); err != nil {
		return err
	}
	// Lock both directories in anode-ID order.
	first, second := n, nd
	if first.id > second.id {
		first, second = second, first
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	if first != second {
		second.mu.Lock()
		defer second.mu.Unlock()
	}
	srcDir, err := n.load()
	if err != nil {
		return err
	}
	dstDir, err := nd.load()
	if err != nil {
		return err
	}
	if srcDir.Type != anode.TypeDir || dstDir.Type != anode.TypeDir {
		return fs.ErrNotDir
	}
	if err := n.require(ctx, srcDir, fs.RightDelete); err != nil {
		return err
	}
	if err := nd.require(ctx, dstDir, fs.RightInsert); err != nil {
		return err
	}
	e, err := n.vol.agg.dirLookup(n.id, oldName)
	if err != nil {
		return err
	}
	if n.id == nd.id && oldName == newName {
		return nil
	}
	// Moving a directory: the destination must not be inside it.
	if e.typ == anode.TypeDir && n.id != nd.id {
		if err := n.vol.checkNotDescendant(e.id, nd.id); err != nil {
			return err
		}
	}
	st := n.vol.agg.store
	// Replace semantics for an existing target.
	var replaced *dirent
	if te, err := n.vol.agg.dirLookup(nd.id, newName); err == nil {
		if te.id == e.id {
			return nil // same object
		}
		if te.typ == anode.TypeDir {
			if e.typ != anode.TypeDir {
				return fs.ErrIsDir
			}
			empty, err := n.vol.agg.dirEmpty(te.id)
			if err != nil {
				return err
			}
			if !empty {
				return fs.ErrNotEmpty
			}
		} else if e.typ == anode.TypeDir {
			return fs.ErrNotDir
		}
		replaced = &te
	}
	tx := st.Begin()
	if replaced != nil {
		if err := n.vol.agg.dirRemove(tx, nd.id, *replaced); err != nil {
			abort(tx)
			return err
		}
	}
	if err := n.vol.agg.dirRemove(tx, n.id, e); err != nil {
		abort(tx)
		return err
	}
	if err := n.vol.agg.dirInsert(tx, nd.id, dirent{
		typ: e.typ, id: e.id, uniq: e.uniq, name: newName,
	}); err != nil {
		abort(tx)
		return err
	}
	if e.typ == anode.TypeDir && n.id != nd.id {
		moved, err := st.Get(e.id)
		if err != nil {
			abort(tx)
			return err
		}
		moved.Parent = nd.id
		if err := st.Put(tx, moved); err != nil {
			abort(tx)
			return err
		}
	}
	var replacedChild anode.Anode
	if replaced != nil {
		replacedChild, err = st.Get(replaced.id)
		if err != nil {
			abort(tx)
			return err
		}
		replacedChild.Nlink--
		if replacedChild.Nlink > 0 && replaced.typ != anode.TypeDir {
			if err := st.Put(tx, replacedChild); err != nil {
				abort(tx)
				return err
			}
		}
	}
	if err := n.touchDir(tx); err != nil {
		abort(tx)
		return err
	}
	if n.id != nd.id {
		if err := nd.touchDir(tx); err != nil {
			abort(tx)
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	if replaced != nil && (replacedChild.Nlink == 0 || replaced.typ == anode.TypeDir) {
		if replacedChild.ACL != 0 {
			if err := n.vol.agg.freeAnodeBounded(replacedChild.ACL); err != nil {
				return err
			}
		}
		if replacedChild.Hash != 0 {
			if err := n.vol.agg.freeAnodeBounded(replacedChild.Hash); err != nil {
				return err
			}
		}
		if err := n.vol.agg.freeAnodeBounded(replaced.id); err != nil {
			return err
		}
	}
	return nil
}

// checkNotDescendant walks candidate's parent chain; it must not pass
// through root (which would make the rename create a cycle).
func (v *Volume) checkNotDescendant(root, candidate anode.ID) error {
	rec, err := v.agg.record(v.id)
	if err != nil {
		return err
	}
	cur := candidate
	for depth := 0; depth < vfs.WalkLimit; depth++ {
		if cur == root {
			return fmt.Errorf("%w: rename into own subtree", fs.ErrInvalid)
		}
		if cur == rec.RootAnode || cur == 0 {
			return nil
		}
		a, err := v.agg.store.Get(cur)
		if err != nil {
			return err
		}
		cur = a.Parent
	}
	return fmt.Errorf("%w: parent chain too deep", fs.ErrInvalid)
}

// ReadDir implements vfs.Vnode.
func (n *Vnode) ReadDir(ctx *vfs.Context) ([]fs.Dirent, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	a, err := n.load()
	if err != nil {
		return nil, err
	}
	if a.Type != anode.TypeDir {
		return nil, fs.ErrNotDir
	}
	if err := n.require(ctx, a, fs.RightRead); err != nil {
		return nil, err
	}
	ents, err := n.vol.agg.dirList(n.id)
	if err != nil {
		return nil, err
	}
	out := make([]fs.Dirent, len(ents))
	for i, e := range ents {
		out[i] = fs.Dirent{
			Name:  e.name,
			Vnode: uint64(e.id),
			Uniq:  e.uniq,
			Type:  e.typ.FileType(),
		}
	}
	return out, nil
}

// ACL implements vfs.ACLVnode.
func (n *Vnode) ACL(ctx *vfs.Context) (fs.ACL, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	a, err := n.load()
	if err != nil {
		return fs.ACL{}, err
	}
	return n.vol.agg.loadACL(a)
}

// SetACL implements vfs.ACLVnode: any file or directory may carry an ACL
// (§2.3), stored in its own open-ended anode (§2.4).
func (n *Vnode) SetACL(ctx *vfs.Context, acl fs.ACL) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.mutable(); err != nil {
		return err
	}
	a, err := n.load()
	if err != nil {
		return err
	}
	if ctx.User != a.Owner {
		if err := n.require(ctx, a, fs.RightAdmin); err != nil {
			return err
		}
	}
	st := n.vol.agg.store
	tx := st.Begin()
	holder := a.ACL
	if holder == 0 {
		h, err := st.Alloc(tx, anode.TypeACL, n.vol.id, 0, a.Owner, a.Group)
		if err != nil {
			abort(tx)
			return err
		}
		holder = h.ID
		a.ACL = holder
		a.Ctime = st.Clock()
		if err := st.Put(tx, a); err != nil {
			abort(tx)
			return err
		}
	} else {
		if err := st.Truncate(tx, holder, 0); err != nil {
			abort(tx)
			return err
		}
	}
	if _, err := st.WriteAt(tx, holder, encodeACL(acl), 0); err != nil {
		abort(tx)
		return err
	}
	return tx.Commit()
}
