package episode

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"decorum/internal/blockdev"
	"decorum/internal/fs"
	"decorum/internal/vfs"
)

// Model-based testing: a random stream of namespace and data operations
// runs against both Episode and a trivial in-memory model; any divergence
// in success/failure or visible state is a bug in one of them. The model
// is a plain map tree — if the two agree on every probe, Episode's much
// more complicated machinery (transactions, COW, logged directories) is
// behaviourally invisible, as it should be.

type modelNode struct {
	isDir bool
	data  []byte
	kids  map[string]*modelNode
}

func newModelDir() *modelNode {
	return &modelNode{isDir: true, kids: map[string]*modelNode{}}
}

// cloneModelNode deep-copies a model subtree (snapshot comparison).
func cloneModelNode(m *modelNode) *modelNode {
	cp := &modelNode{isDir: m.isDir, data: append([]byte(nil), m.data...)}
	if m.isDir {
		cp.kids = make(map[string]*modelNode, len(m.kids))
		for k, v := range m.kids {
			cp.kids[k] = cloneModelNode(v)
		}
	}
	return cp
}

// modelWalk resolves a directory path like ["a","b"].
func modelWalk(root *modelNode, path []string) *modelNode {
	cur := root
	for _, p := range path {
		n, ok := cur.kids[p]
		if !ok || !n.isDir {
			return nil
		}
		cur = n
	}
	return cur
}

func TestModelCheckNamespaceOps(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			runModelCheck(t, seed, 300)
		})
	}
}

func runModelCheck(t *testing.T, seed int64, steps int) {
	rng := rand.New(rand.NewSource(seed))
	dev := blockdev.NewMem(512, 8192)
	agg, err := Format(dev, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	info, err := agg.CreateVolume("v", 0)
	if err != nil {
		t.Fatal(err)
	}
	fsys, err := agg.Mount(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	root, err := fsys.Root()
	if err != nil {
		t.Fatal(err)
	}
	ctx := vfs.Superuser()
	model := newModelDir()

	// Snapshots taken mid-run: each must keep matching the model state
	// frozen at clone time, however the live volume changes afterwards.
	type snapshot struct {
		vol   vfs.FileSystem
		model *modelNode
	}
	var snaps []snapshot

	// A small fixed namespace keeps collisions (the interesting cases)
	// frequent: 2 directory levels, 4 names per level.
	names := []string{"a", "b", "c", "d"}
	randDirPath := func() []string {
		switch rng.Intn(3) {
		case 0:
			return nil
		case 1:
			return []string{names[rng.Intn(4)]}
		default:
			return []string{names[rng.Intn(4)], names[rng.Intn(4)]}
		}
	}
	// resolve the episode vnode for a model dir path (nil if the path is
	// not a directory in the model — caller skips those).
	epDir := func(path []string) vfs.Vnode {
		cur := root
		for _, p := range path {
			next, err := cur.Lookup(ctx, p)
			if err != nil {
				t.Fatalf("seed %d: model has dir %v but episode lookup(%s) failed: %v",
					seed, path, p, err)
			}
			cur = next
		}
		return cur
	}

	for step := 0; step < steps; step++ {
		if step > 0 && step%100 == 0 && len(snaps) < 3 {
			snapInfo, err := agg.Clone(info.ID, fmt.Sprintf("snap-%d", step))
			if err != nil {
				t.Fatalf("seed %d step %d: clone: %v", seed, step, err)
			}
			sfs, err := agg.Mount(snapInfo.ID)
			if err != nil {
				t.Fatal(err)
			}
			snaps = append(snaps, snapshot{vol: sfs, model: cloneModelNode(model)})
		}
		dirPath := randDirPath()
		mDir := modelWalk(model, dirPath)
		if mDir == nil {
			continue // path not a dir in the model; nothing to test here
		}
		dir := epDir(dirPath)
		name := names[rng.Intn(4)]
		mChild := mDir.kids[name]

		switch op := rng.Intn(7); op {
		case 0: // create file
			_, err := dir.Create(ctx, name, 0o644)
			if mChild != nil {
				if err == nil {
					t.Fatalf("seed %d step %d: create %v/%s succeeded over existing", seed, step, dirPath, name)
				}
			} else {
				if err != nil {
					t.Fatalf("seed %d step %d: create %v/%s: %v", seed, step, dirPath, name, err)
				}
				mDir.kids[name] = &modelNode{}
			}
		case 1: // mkdir
			_, err := dir.Mkdir(ctx, name, 0o755)
			if mChild != nil {
				if err == nil {
					t.Fatalf("seed %d step %d: mkdir over existing succeeded", seed, step)
				}
			} else {
				if err != nil {
					t.Fatalf("seed %d step %d: mkdir: %v", seed, step, err)
				}
				mDir.kids[name] = newModelDir()
			}
		case 2: // remove file
			err := dir.Remove(ctx, name)
			switch {
			case mChild == nil:
				if err == nil {
					t.Fatalf("seed %d step %d: remove of missing succeeded", seed, step)
				}
			case mChild.isDir:
				if err == nil {
					t.Fatalf("seed %d step %d: remove of dir succeeded", seed, step)
				}
			default:
				if err != nil {
					t.Fatalf("seed %d step %d: remove: %v", seed, step, err)
				}
				delete(mDir.kids, name)
			}
		case 3: // rmdir
			err := dir.Rmdir(ctx, name)
			switch {
			case mChild == nil, !mChild.isDir:
				if err == nil {
					t.Fatalf("seed %d step %d: rmdir of non-dir succeeded", seed, step)
				}
			case len(mChild.kids) > 0:
				if err == nil {
					t.Fatalf("seed %d step %d: rmdir of non-empty succeeded", seed, step)
				}
			default:
				if err != nil {
					t.Fatalf("seed %d step %d: rmdir: %v", seed, step, err)
				}
				delete(mDir.kids, name)
			}
		case 4: // write data (file only)
			if mChild == nil || mChild.isDir {
				continue
			}
			f, err := dir.Lookup(ctx, name)
			if err != nil {
				t.Fatalf("seed %d step %d: lookup: %v", seed, step, err)
			}
			payload := make([]byte, rng.Intn(2000)+1)
			rng.Read(payload)
			off := int64(rng.Intn(1500))
			if _, err := f.Write(ctx, payload, off); err != nil {
				t.Fatalf("seed %d step %d: write: %v", seed, step, err)
			}
			if need := off + int64(len(payload)); need > int64(len(mChild.data)) {
				mChild.data = append(mChild.data, make([]byte, need-int64(len(mChild.data)))...)
			}
			copy(mChild.data[off:], payload)
		case 5: // truncate
			if mChild == nil || mChild.isDir {
				continue
			}
			f, _ := dir.Lookup(ctx, name)
			nl := int64(rng.Intn(3000))
			if _, err := f.SetAttr(ctx, fs.AttrChange{Length: &nl}); err != nil {
				t.Fatalf("seed %d step %d: truncate: %v", seed, step, err)
			}
			if nl <= int64(len(mChild.data)) {
				mChild.data = mChild.data[:nl]
			} else {
				mChild.data = append(mChild.data, make([]byte, nl-int64(len(mChild.data)))...)
			}
		case 6: // rename within the same directory
			newName := names[rng.Intn(4)]
			err := dir.Rename(ctx, name, dir, newName)
			mTarget := mDir.kids[newName]
			switch {
			case mChild == nil:
				if err == nil {
					t.Fatalf("seed %d step %d: rename of missing succeeded", seed, step)
				}
			case name == newName:
				if err != nil {
					t.Fatalf("seed %d step %d: self rename: %v", seed, step, err)
				}
			case mTarget != nil && mTarget.isDir != mChild.isDir:
				if err == nil {
					t.Fatalf("seed %d step %d: type-mismatched replace succeeded", seed, step)
				}
			case mTarget != nil && mTarget.isDir && len(mTarget.kids) > 0:
				if err == nil {
					t.Fatalf("seed %d step %d: replace of non-empty dir succeeded", seed, step)
				}
			default:
				if err != nil {
					t.Fatalf("seed %d step %d: rename %s->%s: %v", seed, step, name, newName, err)
				}
				delete(mDir.kids, name)
				mDir.kids[newName] = mChild
			}
		}
	}

	// Final deep comparison of the whole tree.
	var compare func(m *modelNode, dir vfs.Vnode, path string)
	compare = func(m *modelNode, dir vfs.Vnode, path string) {
		ents, err := dir.ReadDir(ctx)
		if err != nil {
			t.Fatalf("seed %d: readdir %q: %v", seed, path, err)
		}
		if len(ents) != len(m.kids) {
			t.Fatalf("seed %d: %q has %d entries, model %d", seed, path, len(ents), len(m.kids))
		}
		for _, e := range ents {
			mk, ok := m.kids[e.Name]
			if !ok {
				t.Fatalf("seed %d: %q/%s not in model", seed, path, e.Name)
			}
			child, err := dir.Lookup(ctx, e.Name)
			if err != nil {
				t.Fatalf("seed %d: lookup %q/%s: %v", seed, path, e.Name, err)
			}
			if mk.isDir {
				if e.Type != fs.TypeDir {
					t.Fatalf("seed %d: %q/%s type mismatch", seed, path, e.Name)
				}
				compare(mk, child, path+"/"+e.Name)
				continue
			}
			attr, err := child.Attr(ctx)
			if err != nil {
				t.Fatalf("seed %d: attr: %v", seed, err)
			}
			if attr.Length != int64(len(mk.data)) {
				t.Fatalf("seed %d: %q/%s length %d, model %d", seed, path, e.Name, attr.Length, len(mk.data))
			}
			got := make([]byte, len(mk.data))
			if _, err := child.Read(ctx, got, 0); err != nil {
				t.Fatalf("seed %d: read: %v", seed, err)
			}
			if !bytes.Equal(got, mk.data) {
				t.Fatalf("seed %d: %q/%s content mismatch", seed, path, e.Name)
			}
		}
	}
	compare(model, root, "")

	// Every snapshot still matches its frozen model — writes to the live
	// volume never leaked through the copy-on-write sharing.
	for i, sn := range snaps {
		sroot, err := sn.vol.Root()
		if err != nil {
			t.Fatalf("seed %d: snapshot %d root: %v", seed, i, err)
		}
		compare(sn.model, sroot, fmt.Sprintf("(snap%d)", i))
	}

	// And the aggregate is self-consistent: a salvage finds nothing.
	res, err := agg.Salvage()
	if err != nil {
		t.Fatalf("seed %d: salvage: %v", seed, err)
	}
	if res.OrphansFreed != 0 || res.EntriesDropped != 0 || res.LinkFixes != 0 {
		t.Fatalf("seed %d: salvage found inconsistencies: %+v", seed, res)
	}
}
