package episode

import (
	"testing"

	"decorum/internal/anode"
	"decorum/internal/fs"
)

func TestSalvageCleanVolumeFindsNothing(t *testing.T) {
	agg := newAgg(t)
	fsys, _ := newVol(t, agg, "v")
	root, _ := fsys.Root()
	d, _ := root.Mkdir(su(), "d", 0o755)
	f, _ := d.Create(su(), "f", 0o644)
	if _, err := f.Write(su(), []byte("data"), 0); err != nil {
		t.Fatal(err)
	}
	if err := root.Link(su(), "hard", f); err != nil {
		t.Fatal(err)
	}
	res, err := agg.Salvage()
	if err != nil {
		t.Fatal(err)
	}
	if res.OrphansFreed != 0 || res.EntriesDropped != 0 || res.LinkFixes != 0 {
		t.Fatalf("clean salvage found problems: %+v", res)
	}
	if res.AnodesScanned == 0 {
		t.Fatal("scanned nothing")
	}
	// The volume still works.
	if _, err := d.Lookup(su(), "f"); err != nil {
		t.Fatal(err)
	}
}

func TestSalvageReclaimsOrphan(t *testing.T) {
	agg := newAgg(t)
	fsys, info := newVol(t, agg, "v")
	root, _ := fsys.Root()
	// Fabricate the documented crash window: an allocated anode with no
	// directory entry (entry removed, storage not yet freed).
	tx := agg.Store().Begin()
	orphan, err := agg.Store().Alloc(tx, anode.TypeFile, info.ID, 0o644, fs.SuperUser, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := func() (int, error) {
		tx := agg.Store().Begin()
		defer tx.Commit()
		return agg.Store().WriteAt(tx, orphan.ID, make([]byte, 5000), 0)
	}(); err != nil {
		t.Fatal(err)
	}
	free0 := agg.Store().FreeBlocks()
	res, err := agg.Salvage()
	if err != nil {
		t.Fatal(err)
	}
	if res.OrphansFreed != 1 {
		t.Fatalf("orphans freed = %d, want 1: %+v", res.OrphansFreed, res)
	}
	if got := agg.Store().FreeBlocks(); got <= free0 {
		t.Fatalf("no blocks reclaimed: %d -> %d", free0, got)
	}
	if _, err := agg.Store().Get(orphan.ID); err == nil {
		t.Fatal("orphan anode still allocated")
	}
	// Live files untouched.
	if _, err := root.ReadDir(su()); err != nil {
		t.Fatal(err)
	}
}

func TestSalvageDropsDanglingEntry(t *testing.T) {
	agg := newAgg(t)
	fsys, info := newVol(t, agg, "v")
	root, _ := fsys.Root()
	f, err := root.Create(su(), "ghost", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := root.Create(su(), "real", 0o644); err != nil {
		t.Fatal(err)
	}
	// Corrupt: free the anode directly, leaving the entry dangling (the
	// inverse crash window).
	ghostID := anode.ID(f.FID().Vnode)
	tx := agg.Store().Begin()
	if err := agg.Store().Free(tx, ghostID); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err := agg.Salvage()
	if err != nil {
		t.Fatal(err)
	}
	if res.EntriesDropped != 1 {
		t.Fatalf("entries dropped = %d: %+v", res.EntriesDropped, res)
	}
	ents, err := root.ReadDir(su())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name != "real" {
		t.Fatalf("directory after salvage: %v", ents)
	}
	_ = info
}

func TestSalvageFixesLinkCount(t *testing.T) {
	agg := newAgg(t)
	fsys, _ := newVol(t, agg, "v")
	root, _ := fsys.Root()
	f, _ := root.Create(su(), "f", 0o644)
	if err := root.Link(su(), "alias", f); err != nil {
		t.Fatal(err)
	}
	// Corrupt the link count.
	id := anode.ID(f.FID().Vnode)
	tx := agg.Store().Begin()
	cur, _ := agg.Store().Get(id)
	cur.Nlink = 7
	if err := agg.Store().Put(tx, cur); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	res, err := agg.Salvage()
	if err != nil {
		t.Fatal(err)
	}
	if res.LinkFixes != 1 {
		t.Fatalf("link fixes = %d: %+v", res.LinkFixes, res)
	}
	attr, _ := f.Attr(su())
	if attr.Nlink != 2 {
		t.Fatalf("nlink after salvage = %d, want 2", attr.Nlink)
	}
}

func TestSalvageSparesClonesAndACLs(t *testing.T) {
	agg := newAgg(t)
	fsys, info := newVol(t, agg, "v")
	root, _ := fsys.Root()
	f, _ := root.Create(su(), "f", 0o644)
	var acl fs.ACL
	acl.Grant(fs.Who{Kind: fs.WhoUser, ID: 9}, fs.RightRead)
	if err := f.(*Vnode).SetACL(su(), acl); err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Clone(info.ID, "v.snap"); err != nil {
		t.Fatal(err)
	}
	res, err := agg.Salvage()
	if err != nil {
		t.Fatal(err)
	}
	if res.OrphansFreed != 0 || res.EntriesDropped != 0 {
		t.Fatalf("salvage damaged clone/ACL state: %+v", res)
	}
	// ACL still readable.
	got, err := f.(*Vnode).ACL(su())
	if err != nil {
		t.Fatal(err)
	}
	got.Normalize()
	acl.Normalize()
	if got.String() != acl.String() {
		t.Fatalf("ACL after salvage: %v", got)
	}
}
