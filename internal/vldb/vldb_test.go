package vldb

import (
	"errors"
	"net"
	"reflect"
	"testing"

	"decorum/internal/fs"
	"decorum/internal/rpc"
	"decorum/internal/stripe"
)

func TestRegisterLookupLocal(t *testing.T) {
	s := NewServer(0, 1)
	s.Register(Entry{ID: 7, Name: "user.alice", RWAddr: "srv1"})
	e, err := s.Lookup(7, "")
	if err != nil {
		t.Fatal(err)
	}
	if e.RWAddr != "srv1" {
		t.Fatalf("entry %+v", e)
	}
	if _, err := s.Lookup(0, "user.alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Lookup(99, ""); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing lookup: %v", err)
	}
}

func TestAllocIDPartitioned(t *testing.T) {
	a := NewServer(0, 2)
	b := NewServer(1, 2)
	seen := map[fs.VolumeID]bool{}
	for i := 0; i < 20; i++ {
		for _, s := range []*Server{a, b} {
			id := s.AllocID()
			if seen[id] {
				t.Fatalf("duplicate id %d across replicas", id)
			}
			seen[id] = true
		}
	}
}

func TestRPCServiceAndLocator(t *testing.T) {
	s := NewServer(0, 1)
	s.Register(Entry{ID: 3, Name: "proj", RWAddr: "fileserver-9"})
	cs, ss := net.Pipe()
	s.Attach(ss, rpc.Options{})
	c := DialClient(cs, rpc.Options{})

	addr, err := c.VolumeAddr(3)
	if err != nil || addr != "fileserver-9" {
		t.Fatalf("VolumeAddr = %q, %v", addr, err)
	}
	id, addr, err := c.VolumeByName("proj")
	if err != nil || id != 3 || addr != "fileserver-9" {
		t.Fatalf("VolumeByName = %d %q, %v", id, addr, err)
	}
	// Cache: a second resolution makes no RPC.
	// (Register a change; the cached client misses it until Invalidate.)
	s.Register(Entry{ID: 3, Name: "proj", RWAddr: "fileserver-10", Version: 2})
	addr, _ = c.VolumeAddr(3)
	if addr != "fileserver-9" {
		t.Fatalf("cache should have served the old address, got %q", addr)
	}
	c.Invalidate(3)
	addr, _ = c.VolumeAddr(3)
	if addr != "fileserver-10" {
		t.Fatalf("after invalidate: %q", addr)
	}
}

func TestReplicationBetweenVLDBServers(t *testing.T) {
	a := NewServer(0, 2)
	b := NewServer(1, 2)
	// Wire a -> b.
	ca, cb := net.Pipe()
	b.Attach(cb, rpc.Options{})
	a.AddPeer(ca, rpc.Options{})

	a.Register(Entry{ID: 5, Name: "shared", RWAddr: "srv1"})
	// The entry propagated to b.
	e, err := b.Lookup(5, "")
	if err != nil {
		t.Fatalf("replica lookup: %v", err)
	}
	if e.RWAddr != "srv1" {
		t.Fatalf("replica entry %+v", e)
	}
	// Older versions never overwrite newer ones (last writer wins).
	b.upsert(Entry{ID: 5, Name: "shared", RWAddr: "stale", Version: 0}, false)
	e, _ = b.Lookup(5, "")
	if e.RWAddr != "srv1" {
		t.Fatalf("stale write clobbered entry: %+v", e)
	}
}

func testLayout() *stripe.Layout {
	return &stripe.Layout{
		Width: 2,
		Members: []stripe.Member{
			{Addr: "m0", Volume: 101},
			{Addr: "m1", Volume: 102},
			{Addr: "m2", Volume: 103},
		},
	}
}

// A striped entry's layout round-trips through the wire protocol (gob)
// intact, and unstriped lookups keep returning a nil layout.
func TestStripedLayoutRoundTrip(t *testing.T) {
	s := NewServer(0, 1)
	lay := testLayout()
	if err := s.Register(Entry{ID: 8, Name: "striped", RWAddr: "primary", Stripe: lay}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(Entry{ID: 9, Name: "plain", RWAddr: "primary"}); err != nil {
		t.Fatal(err)
	}
	cs, ss := net.Pipe()
	s.Attach(ss, rpc.Options{})
	c := DialClient(cs, rpc.Options{})

	got, err := c.VolumeLayout(8)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || !reflect.DeepEqual(*got, *lay) {
		t.Fatalf("layout round-trip: got %+v, want %+v", got, lay)
	}
	// The striped volume still resolves to its primary (metadata) site.
	if addr, err := c.VolumeAddr(8); err != nil || addr != "primary" {
		t.Fatalf("VolumeAddr(striped) = %q, %v", addr, err)
	}
	// Unstriped lookup: nil layout, no error.
	if got, err := c.VolumeLayout(9); err != nil || got != nil {
		t.Fatalf("VolumeLayout(plain) = %+v, %v; want nil, nil", got, err)
	}
}

// Malformed layouts are rejected at registration — locally and over the
// wire — and leave no entry behind.
func TestStripedLayoutRejection(t *testing.T) {
	s := NewServer(0, 1)
	bad := []*stripe.Layout{
		// Width below 2.
		{Width: 1, Members: []stripe.Member{{Addr: "a", Volume: 11}, {Addr: "b", Volume: 12}}},
		// Parity overlap: the same server appears twice.
		{Width: 2, Members: []stripe.Member{
			{Addr: "a", Volume: 11}, {Addr: "b", Volume: 12}, {Addr: "a", Volume: 13}}},
		// Member count does not match width+1.
		{Width: 3, Members: []stripe.Member{{Addr: "a", Volume: 11}, {Addr: "b", Volume: 12}}},
		// A member volume shadowing the logical volume.
		{Width: 2, Members: []stripe.Member{
			{Addr: "a", Volume: 21}, {Addr: "b", Volume: 12}, {Addr: "c", Volume: 13}}},
	}
	for i, lay := range bad {
		err := s.Register(Entry{ID: 21, Name: "bad", RWAddr: "primary", Stripe: lay})
		if !errors.Is(err, fs.ErrInvalid) {
			t.Fatalf("bad layout %d: err = %v, want ErrInvalid", i, err)
		}
		if _, err := s.Lookup(21, ""); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("bad layout %d left an entry behind", i)
		}
	}
	// The same rejection crosses the RPC boundary as a classified error.
	cs, ss := net.Pipe()
	s.Attach(ss, rpc.Options{})
	c := DialClient(cs, rpc.Options{})
	var reply struct{}
	err := c.peer.Call(MRegister, RegisterArgs{Entry: Entry{
		ID: 22, Name: "bad-wire", RWAddr: "primary", Stripe: bad[0],
	}}, &reply)
	if err == nil {
		t.Fatal("wire registration of an invalid layout succeeded")
	}
}

func TestReplicaAddrPrefersRO(t *testing.T) {
	s := NewServer(0, 1)
	s.Register(Entry{ID: 4, Name: "docs", RWAddr: "rw-srv", ROAddrs: []string{"ro-srv"}})
	c := NewLocalClient(s)
	addr, err := c.ReplicaAddr(4)
	if err != nil || addr != "ro-srv" {
		t.Fatalf("ReplicaAddr = %q, %v", addr, err)
	}
	s.Register(Entry{ID: 6, Name: "solo", RWAddr: "rw-only", Version: 1})
	addr, err = c.ReplicaAddr(6)
	if err != nil || addr != "rw-only" {
		t.Fatalf("ReplicaAddr fallback = %q, %v", addr, err)
	}
}
