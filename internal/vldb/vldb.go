// Package vldb implements the volume location database (§3.4 of the
// paper): "a global replicated database describing which volumes are on
// which servers, [providing] service to remote clients" — while each file
// server keeps its own local volume registry.
//
// The database maps volume IDs and names to the read-write site and any
// read-only (replica) sites, and allocates cell-wide volume IDs.
// Replication across VLDB servers is write-to-all-reachable with
// last-writer-wins per entry, read-any: the availability model AFS used
// for its location database.
package vldb

import (
	"fmt"
	"net"
	"sync"

	"decorum/internal/fs"
	"decorum/internal/proto"
	"decorum/internal/rpc"
	"decorum/internal/stripe"
)

// Entry is one volume's location record.
type Entry struct {
	ID      fs.VolumeID
	Name    string
	RWAddr  string   // the server holding the read-write volume
	ROAddrs []string // servers holding read-only replicas
	// Stripe, when non-nil, declares the volume striped: file data
	// lives on the layout's member volumes (RAID-5 rotating parity)
	// while RWAddr keeps serving the namespace, status, and tokens.
	Stripe *stripe.Layout
	// Version orders updates across replicas (last writer wins).
	Version uint64
}

// RPC method names.
const (
	MRegister = "vldb.Register"
	MLookup   = "vldb.Lookup"
	MAllocID  = "vldb.AllocID"
	MList     = "vldb.List"
	mGossip   = "vldb.Gossip"
)

// RegisterArgs upserts an entry.
type RegisterArgs struct {
	Entry Entry
}

// LookupArgs resolves by ID (nonzero) or Name.
type LookupArgs struct {
	ID   fs.VolumeID
	Name string
}

// LookupReply returns the entry.
type LookupReply struct {
	Entry Entry
}

// AllocIDReply carries a fresh cell-wide volume ID.
type AllocIDReply struct {
	ID fs.VolumeID
}

// ListReply enumerates entries.
type ListReply struct {
	Entries []Entry
}

// Server is one VLDB replica.
type Server struct {
	// idBase spaces ID allocation so replicas never collide.
	idBase uint64
	idStep uint64

	mu      sync.Mutex
	entries map[fs.VolumeID]*Entry // guarded by mu
	nextID  uint64                 // guarded by mu
	peers   []*rpc.Peer            // guarded by mu
}

// NewServer creates a replica. replicaIndex/replicaCount partition the ID
// space so concurrent allocations at different replicas never collide.
func NewServer(replicaIndex, replicaCount int) *Server {
	if replicaCount < 1 {
		replicaCount = 1
	}
	return &Server{
		idBase:  uint64(replicaIndex) + 1,
		idStep:  uint64(replicaCount),
		entries: make(map[fs.VolumeID]*Entry),
	}
}

// AddPeer links another replica for write propagation.
func (s *Server) AddPeer(conn net.Conn, opts rpc.Options) {
	peer := rpc.NewPeer(conn, opts)
	peer.Start()
	s.mu.Lock()
	s.peers = append(s.peers, peer)
	s.mu.Unlock()
}

// Attach serves the VLDB protocol on conn.
func (s *Server) Attach(conn net.Conn, opts rpc.Options) *rpc.Peer {
	peer := rpc.NewPeer(conn, opts)
	s.registerHandlers(peer)
	peer.Start()
	return peer
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener, opts rpc.Options) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.Attach(conn, opts)
	}
}

func (s *Server) registerHandlers(peer *rpc.Peer) {
	peer.Handle(MRegister, func(ctx *rpc.CallCtx, body []byte) ([]byte, error) {
		var a RegisterArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		if err := s.upsert(a.Entry, true); err != nil {
			return nil, proto.EncodeErr(err)
		}
		return rpc.Marshal(struct{}{})
	})
	peer.Handle(mGossip, func(ctx *rpc.CallCtx, body []byte) ([]byte, error) {
		var a RegisterArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		if err := s.upsert(a.Entry, false); err != nil { // do not re-propagate
			return nil, proto.EncodeErr(err)
		}
		return rpc.Marshal(struct{}{})
	})
	peer.Handle(MLookup, func(ctx *rpc.CallCtx, body []byte) ([]byte, error) {
		var a LookupArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		e, err := s.lookup(a)
		if err != nil {
			return nil, proto.EncodeErr(err)
		}
		return rpc.Marshal(LookupReply{Entry: e})
	})
	peer.Handle(MAllocID, func(ctx *rpc.CallCtx, body []byte) ([]byte, error) {
		return rpc.Marshal(AllocIDReply{ID: s.AllocID()})
	})
	peer.Handle(MList, func(ctx *rpc.CallCtx, body []byte) ([]byte, error) {
		s.mu.Lock()
		out := ListReply{}
		for _, e := range s.entries {
			out.Entries = append(out.Entries, *e)
		}
		s.mu.Unlock()
		return rpc.Marshal(out)
	})
}

// AllocID hands out a cell-wide unique volume ID from this replica's
// partition of the ID space.
func (s *Server) AllocID() fs.VolumeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	return fs.VolumeID(s.idBase + (s.nextID-1)*s.idStep)
}

// upsert applies an entry if newer, optionally propagating to peers.
// Propagation is best effort: an unreachable replica catches up on its
// next write (the paper's lazily consistent location database).
// Malformed striping layouts are rejected before any state changes —
// a layout the VLDB serves is one every client may route writes by.
func (s *Server) upsert(e Entry, propagate bool) error {
	if e.Stripe != nil {
		if err := e.Stripe.Validate(e.ID); err != nil {
			return fmt.Errorf("volume %d: %w", e.ID, err)
		}
	}
	s.mu.Lock()
	cur, ok := s.entries[e.ID]
	if !ok || e.Version > cur.Version {
		cp := e
		s.entries[e.ID] = &cp
	}
	peers := append([]*rpc.Peer(nil), s.peers...)
	s.mu.Unlock()
	if !propagate {
		return nil
	}
	for _, p := range peers {
		//lint:ignore errclass gossip is best-effort; the next register repairs a missed update
		p.Call(mGossip, RegisterArgs{Entry: e}, nil)
	}
	return nil
}

// Register upserts locally and propagates (for in-process use by file
// servers and the vos tool). It rejects malformed striping layouts.
func (s *Server) Register(e Entry) error {
	s.mu.Lock()
	if cur, ok := s.entries[e.ID]; ok && e.Version == 0 {
		e.Version = cur.Version + 1
	} else if e.Version == 0 {
		e.Version = 1
	}
	s.mu.Unlock()
	return s.upsert(e, true)
}

func (s *Server) lookup(a LookupArgs) (Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if a.ID != 0 {
		if e, ok := s.entries[a.ID]; ok {
			return *e, nil
		}
		return Entry{}, fmt.Errorf("%w: volume %d", fs.ErrNotExist, a.ID)
	}
	for _, e := range s.entries {
		if e.Name == a.Name {
			return *e, nil
		}
	}
	return Entry{}, fmt.Errorf("%w: volume %q", fs.ErrNotExist, a.Name)
}

// Lookup resolves locally (in-process callers).
func (s *Server) Lookup(id fs.VolumeID, name string) (Entry, error) {
	return s.lookup(LookupArgs{ID: id, Name: name})
}

// Client queries a VLDB server and implements the cache manager's Locator
// interface, caching results (the client resource layer "caches volume
// location information", §4.1).
type Client struct {
	peer  *rpc.Peer
	local *Server // in-process fast path, nil when remote

	mu    sync.Mutex
	cache map[fs.VolumeID]Entry // guarded by mu
}

// DialClient attaches a locator client to a VLDB server connection.
func DialClient(conn net.Conn, opts rpc.Options) *Client {
	peer := rpc.NewPeer(conn, opts)
	peer.Start()
	return &Client{peer: peer, cache: make(map[fs.VolumeID]Entry)}
}

// NewLocalClient wraps an in-process VLDB server as a Locator.
func NewLocalClient(s *Server) *Client {
	return &Client{local: s, cache: make(map[fs.VolumeID]Entry)}
}

// Entry resolves a volume's location record.
func (c *Client) Entry(id fs.VolumeID, name string) (Entry, error) {
	c.mu.Lock()
	if id != 0 {
		if e, ok := c.cache[id]; ok {
			c.mu.Unlock()
			return e, nil
		}
	}
	c.mu.Unlock()
	var e Entry
	if c.local != nil {
		le, err := c.local.Lookup(id, name)
		if err != nil {
			return Entry{}, err
		}
		e = le
	} else {
		var reply LookupReply
		if err := c.peer.Call(MLookup, LookupArgs{ID: id, Name: name}, &reply); err != nil {
			return Entry{}, proto.DecodeErr(err)
		}
		e = reply.Entry
	}
	c.mu.Lock()
	c.cache[e.ID] = e
	c.mu.Unlock()
	return e, nil
}

// Invalidate drops a cached location (after a move).
func (c *Client) Invalidate(id fs.VolumeID) {
	c.mu.Lock()
	delete(c.cache, id)
	c.mu.Unlock()
}

// VolumeAddr implements client.Locator.
func (c *Client) VolumeAddr(id fs.VolumeID) (string, error) {
	e, err := c.Entry(id, "")
	if err != nil {
		return "", err
	}
	return e.RWAddr, nil
}

// VolumeByName implements client.Locator.
func (c *Client) VolumeByName(name string) (fs.VolumeID, string, error) {
	e, err := c.Entry(0, name)
	if err != nil {
		return 0, "", err
	}
	return e.ID, e.RWAddr, nil
}

// VolumeLayout implements client.LayoutLocator: the striping layout a
// volume declared, or nil for an unstriped volume. Like the address,
// the layout is served from the location cache — a relayout is a
// volume move and repoints through Invalidate.
func (c *Client) VolumeLayout(id fs.VolumeID) (*stripe.Layout, error) {
	e, err := c.Entry(id, "")
	if err != nil {
		return nil, err
	}
	return e.Stripe, nil
}

// ReplicaAddr returns a read-only site if one exists, else the RW site —
// how read-mostly clients offload the master (§3.8).
func (c *Client) ReplicaAddr(id fs.VolumeID) (string, error) {
	e, err := c.Entry(id, "")
	if err != nil {
		return "", err
	}
	if len(e.ROAddrs) > 0 {
		return e.ROAddrs[0], nil
	}
	return e.RWAddr, nil
}
