// Package nfsmode is the NFS-style baseline client of §5.4 of the paper,
// implemented against the same protocol exporter as the DEcorum cache
// manager:
//
//   - no server state, no tokens, no callbacks: consistency comes from
//     fixed time limits — "a page of cached file data is assumed to be
//     valid for 3 seconds; if it is directory data ... 30 seconds";
//   - after the window, the client revalidates with a GetAttr poll and
//     refetches data when the attributes changed — and it polls "whether
//     or not any shared data have been modified", the traffic the paper
//     calls a disadvantage without a corresponding advantage;
//   - writes go through to the server immediately (NFSv2 semantics).
package nfsmode

import (
	"net"
	"sync"
	"time"

	"decorum/internal/fs"
	"decorum/internal/proto"
	"decorum/internal/rpc"
)

// Validity windows (§5.4 quotes these numbers).
const (
	FileTTL = 3 * time.Second
	DirTTL  = 30 * time.Second
)

// Client is one NFS-style client.
type Client struct {
	name string
	peer *rpc.Peer
	// Clock is settable so experiments can compress time.
	Clock func() time.Time
	// FileTTLOverride and DirTTLOverride shorten the windows in tests
	// (zero keeps the standard values).
	FileTTLOverride time.Duration
	DirTTLOverride  time.Duration

	mu    sync.Mutex
	files map[fs.FID]*entry
	stats Stats
}

// Stats counts baseline behaviour.
type Stats struct {
	Revalidations uint64 // GetAttr polls
	Refetches     uint64 // data fetched after a changed attr
	CacheHits     uint64 // reads inside the validity window
}

type entry struct {
	attr     fs.Attr
	data     []byte
	fetched  time.Time
	haveData bool
}

// Dial connects the baseline client.
func Dial(name string, conn net.Conn, opts rpc.Options) (*Client, error) {
	c := &Client{
		name:  name,
		Clock: time.Now,
		files: make(map[fs.FID]*entry),
	}
	peer := rpc.NewPeer(conn, opts)
	peer.Handle(proto.CBProbe, func(ctx *rpc.CallCtx, body []byte) ([]byte, error) {
		return rpc.Marshal(struct{}{})
	})
	// NFS has no callbacks; if the server ever sends a revocation (it
	// will not, because this client never takes tokens), agree blindly.
	peer.Handle(proto.CBRevoke, func(ctx *rpc.CallCtx, body []byte) ([]byte, error) {
		return rpc.Marshal(proto.RevokeReply{Returned: true})
	})
	peer.Start()
	var reg proto.RegisterReply
	if err := peer.Call(proto.MRegister, proto.RegisterArgs{ClientName: name}, &reg); err != nil {
		peer.Close()
		return nil, proto.DecodeErr(err)
	}
	c.peer = peer
	return c, nil
}

// Close tears the association down.
func (c *Client) Close() error { return c.peer.Close() }

// Stats returns the counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// RPCStats exposes transport counters.
func (c *Client) RPCStats() rpc.Stats { return c.peer.Stats() }

func (c *Client) fileTTL() time.Duration {
	if c.FileTTLOverride != 0 {
		return c.FileTTLOverride
	}
	return FileTTL
}

// Root resolves a volume root.
func (c *Client) Root(vol fs.VolumeID) (fs.FID, error) {
	var reply proto.GetRootReply
	if err := c.peer.Call(proto.MGetRoot, proto.GetRootArgs{Volume: vol}, &reply); err != nil {
		return fs.FID{}, proto.DecodeErr(err)
	}
	return reply.FID, nil
}

// Lookup resolves a name (uncached: NFS caches directory pages under the
// 30-second rule, which the experiments do not exercise).
func (c *Client) Lookup(dir fs.FID, name string) (fs.FID, error) {
	var reply proto.NameReply
	if err := c.peer.Call(proto.MLookup, proto.NameArgs{Dir: dir, Name: name}, &reply); err != nil {
		return fs.FID{}, proto.DecodeErr(err)
	}
	return reply.FID, nil
}

// Create makes a file.
func (c *Client) Create(dir fs.FID, name string, mode fs.Mode) (fs.FID, error) {
	var reply proto.NameReply
	err := c.peer.Call(proto.MCreate, proto.NameArgs{Dir: dir, Name: name, Mode: mode}, &reply)
	if err != nil {
		return fs.FID{}, proto.DecodeErr(err)
	}
	return reply.FID, nil
}

// revalidate polls GetAttr when the window expired and refetches data on
// change. Returns the entry, freshly valid.
func (c *Client) revalidate(fid fs.FID) (*entry, error) {
	c.mu.Lock()
	e, ok := c.files[fid]
	now := c.Clock()
	if ok && e.haveData && now.Sub(e.fetched) < c.fileTTL() {
		c.stats.CacheHits++
		c.mu.Unlock()
		return e, nil
	}
	c.mu.Unlock()

	var st proto.FetchStatusReply
	if err := c.peer.Call(proto.MFetchStatus, proto.FetchStatusArgs{FID: fid}, &st); err != nil {
		return nil, proto.DecodeErr(err)
	}
	c.mu.Lock()
	c.stats.Revalidations++
	e, ok = c.files[fid]
	if !ok {
		e = &entry{}
		c.files[fid] = e
	}
	needData := !e.haveData || e.attr.DataVersion != st.Attr.DataVersion ||
		e.attr.Mtime != st.Attr.Mtime || e.attr.Length != st.Attr.Length
	e.attr = st.Attr
	e.fetched = now
	c.mu.Unlock()
	if !needData {
		return e, nil
	}

	data := make([]byte, 0, st.Attr.Length)
	const step = 256 * 1024
	for off := int64(0); off < st.Attr.Length; off += step {
		n := st.Attr.Length - off
		if n > step {
			n = step
		}
		var reply proto.FetchDataReply
		err := c.peer.Call(proto.MFetchData, proto.FetchDataArgs{
			FID: fid, Offset: off, Length: int(n),
		}, &reply)
		if err != nil {
			return nil, proto.DecodeErr(err)
		}
		data = append(data, reply.Data...)
	}
	c.mu.Lock()
	e.data = data
	e.haveData = true
	c.stats.Refetches++
	c.mu.Unlock()
	return e, nil
}

// Read serves from cache inside the 3-second window, revalidating after.
func (c *Client) Read(fid fs.FID, p []byte, off int64) (int, error) {
	e, err := c.revalidate(fid)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if off >= int64(len(e.data)) {
		return 0, nil
	}
	return copy(p, e.data[off:]), nil
}

// Write goes straight through to the server and updates the local copy.
func (c *Client) Write(fid fs.FID, p []byte, off int64) (int, error) {
	var reply proto.StoreDataReply
	err := c.peer.Call(proto.MStoreData, proto.StoreDataArgs{
		FID: fid, Offset: off, Data: p,
	}, &reply)
	if err != nil {
		return 0, proto.DecodeErr(err)
	}
	c.mu.Lock()
	if e, ok := c.files[fid]; ok && e.haveData {
		if need := off + int64(len(p)); need > int64(len(e.data)) {
			e.data = append(e.data, make([]byte, need-int64(len(e.data)))...)
		}
		copy(e.data[off:], p)
		e.attr = reply.Attr
	}
	c.mu.Unlock()
	return len(p), nil
}
