package nfsmode

import (
	"bytes"
	"net"
	"testing"
	"time"

	"decorum/internal/blockdev"
	"decorum/internal/episode"
	"decorum/internal/rpc"
	"decorum/internal/server"
	"decorum/internal/vfs"
)

func newCell(t *testing.T) (*server.Server, vfs.VolumeInfo) {
	t.Helper()
	dev := blockdev.NewMem(512, 4096)
	agg, err := episode.Format(dev, episode.Options{LogBlocks: 64, PoolSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	vol, err := agg.CreateVolume("v", 0)
	if err != nil {
		t.Fatal(err)
	}
	return server.New(server.Options{Name: "srv"}, agg), vol
}

func dial(t *testing.T, srv *server.Server, name string) *Client {
	t.Helper()
	cs, ss := net.Pipe()
	srv.Attach(ss)
	c, err := Dial(name, cs, rpc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestWriteThroughAndRead(t *testing.T) {
	srv, vol := newCell(t)
	a := dial(t, srv, "nfsA")
	root, err := a.Root(vol.ID)
	if err != nil {
		t.Fatal(err)
	}
	fid, err := a.Create(root, "f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("write-through")
	if _, err := a.Write(fid, msg, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := a.Read(fid, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q", got)
	}
}

func TestStalenessWindow(t *testing.T) {
	// The §5.4 behaviour: a second client sees stale data inside the
	// 3-second window and fresh data after it.
	srv, vol := newCell(t)
	a := dial(t, srv, "nfsA")
	b := dial(t, srv, "nfsB")
	// Compress the window so the test runs fast.
	now := time.Unix(1000, 0)
	b.Clock = func() time.Time { return now }
	b.FileTTLOverride = 3 * time.Second

	root, _ := a.Root(vol.ID)
	fid, err := a.Create(root, "f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write(fid, []byte("v1"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := b.Read(fid, buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "v1" {
		t.Fatalf("B read %q", buf)
	}
	// A writes v2; B inside the window still sees v1.
	if _, err := a.Write(fid, []byte("v2"), 0); err != nil {
		t.Fatal(err)
	}
	now = now.Add(time.Second)
	b.Read(fid, buf, 0)
	if string(buf) != "v1" {
		t.Fatalf("B read %q inside the window; NFS should serve stale data", buf)
	}
	// Past the window: revalidation notices the change and refetches.
	now = now.Add(5 * time.Second)
	b.Read(fid, buf, 0)
	if string(buf) != "v2" {
		t.Fatalf("B read %q after the window", buf)
	}
	if b.Stats().Refetches < 2 {
		t.Fatalf("refetches = %d", b.Stats().Refetches)
	}
}

func TestPollingCostWithoutSharing(t *testing.T) {
	// "clients must communicate with servers every 3 seconds whether or
	// not any shared data have been modified" — reads of an UNCHANGED
	// file still poll after every window.
	srv, vol := newCell(t)
	a := dial(t, srv, "nfsA")
	now := time.Unix(1000, 0)
	a.Clock = func() time.Time { return now }

	root, _ := a.Root(vol.ID)
	fid, err := a.Create(root, "f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write(fid, []byte("constant"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	a.Read(fid, buf, 0)
	base := a.Stats().Revalidations
	// 10 reads spread over 40 simulated seconds: every window expiry
	// costs a poll even though nothing changed.
	for i := 0; i < 10; i++ {
		now = now.Add(4 * time.Second)
		if _, err := a.Read(fid, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	polls := a.Stats().Revalidations - base
	if polls != 10 {
		t.Fatalf("expected 10 polls for 10 out-of-window reads, got %d", polls)
	}
	// But no data was refetched (attrs unchanged).
	if a.Stats().Refetches != 1 {
		t.Fatalf("refetches = %d, want only the initial one", a.Stats().Refetches)
	}
}

func TestCacheHitsInsideWindow(t *testing.T) {
	srv, vol := newCell(t)
	a := dial(t, srv, "nfsA")
	now := time.Unix(1000, 0)
	a.Clock = func() time.Time { return now }
	root, _ := a.Root(vol.ID)
	fid, _ := a.Create(root, "f", 0o644)
	a.Write(fid, []byte("x"), 0)
	buf := make([]byte, 1)
	a.Read(fid, buf, 0)
	sent0 := a.RPCStats().CallsSent
	for i := 0; i < 5; i++ {
		a.Read(fid, buf, 0) // same instant: inside window
	}
	if sent := a.RPCStats().CallsSent; sent != sent0 {
		t.Fatalf("in-window reads sent %d RPCs", sent-sent0)
	}
}
