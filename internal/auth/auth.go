// Package auth is the authentication substrate standing in for MIT
// Kerberos (§3.7 of the paper: "All RPC's are authenticated. The DEcorum
// authentication service is based on Kerberos. A description of it is
// outside the scope of this paper.").
//
// The stand-in keeps the properties the file system depends on:
//
//   - a key-distribution service (KDC) knows every principal's key;
//   - a client obtains a ticket for a service without the service having
//     to talk to the KDC: the ticket is sealed (AES-GCM) under the
//     service's key and carries the client identity and a fresh session
//     key;
//   - every RPC carries an authenticator (HMAC-SHA256 under the session
//     key) binding the message to the session.
package auth

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"time"

	"decorum/internal/fs"
)

// Errors.
var (
	ErrUnknownPrincipal = errors.New("auth: unknown principal")
	ErrBadTicket        = errors.New("auth: ticket rejected")
	ErrExpired          = errors.New("auth: ticket expired")
	ErrBadMAC           = errors.New("auth: message authenticator rejected")
)

// Principal is one named identity (user or service).
type Principal struct {
	Name string
	ID   fs.UserID
	Key  []byte // 32 bytes
}

// KeyFromPassword derives a principal key (a stand-in for Kerberos
// string-to-key).
func KeyFromPassword(password string) []byte {
	sum := sha256.Sum256([]byte("decorum-s2k:" + password))
	return sum[:]
}

// Ticket is the sealed credential a client presents to a service.
type Ticket struct {
	Service string
	Sealed  []byte // AES-GCM(serviceKey, ticketBody)
}

// ticketBody is what the service recovers from a ticket.
type ticketBody struct {
	Client     string
	ClientID   fs.UserID
	SessionKey []byte
	Expiry     int64 // unix nanos
}

// KDC is the key distribution service: a replicated global database in a
// real cell, a struct here.
type KDC struct {
	// Clock is settable in tests.
	Clock func() time.Time
	// TicketLifetime bounds ticket validity.
	TicketLifetime time.Duration

	mu         sync.Mutex
	principals map[string]Principal
}

// NewKDC returns an empty KDC.
func NewKDC() *KDC {
	return &KDC{
		Clock:          time.Now,
		TicketLifetime: time.Hour,
		principals:     make(map[string]Principal),
	}
}

// AddPrincipal registers a user or service with a password-derived key and
// returns the principal record.
func (k *KDC) AddPrincipal(name string, id fs.UserID, password string) Principal {
	p := Principal{Name: name, ID: id, Key: KeyFromPassword(password)}
	k.mu.Lock()
	k.principals[name] = p
	k.mu.Unlock()
	return p
}

// Lookup returns a registered principal.
func (k *KDC) Lookup(name string) (Principal, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	p, ok := k.principals[name]
	if !ok {
		return Principal{}, fmt.Errorf("%w: %q", ErrUnknownPrincipal, name)
	}
	return p, nil
}

// Issue creates a ticket for client to talk to service, plus the session
// key (which in real Kerberos would be sealed for the client under its own
// key; here the caller is the client library, which receives it directly).
func (k *KDC) Issue(client, service string) (Ticket, []byte, error) {
	k.mu.Lock()
	cp, okC := k.principals[client]
	sp, okS := k.principals[service]
	k.mu.Unlock()
	if !okC {
		return Ticket{}, nil, fmt.Errorf("%w: client %q", ErrUnknownPrincipal, client)
	}
	if !okS {
		return Ticket{}, nil, fmt.Errorf("%w: service %q", ErrUnknownPrincipal, service)
	}
	session := make([]byte, 32)
	if _, err := rand.Read(session); err != nil {
		return Ticket{}, nil, err
	}
	body := ticketBody{
		Client:     cp.Name,
		ClientID:   cp.ID,
		SessionKey: session,
		Expiry:     k.Clock().Add(k.TicketLifetime).UnixNano(),
	}
	sealed, err := seal(sp.Key, body)
	if err != nil {
		return Ticket{}, nil, err
	}
	return Ticket{Service: service, Sealed: sealed}, session, nil
}

// Identity is what a service learns from a verified ticket.
type Identity struct {
	Name       string
	ID         fs.UserID
	SessionKey []byte
}

// Verify unseals a ticket with the service key and checks expiry.
func Verify(serviceKey []byte, t Ticket, now time.Time) (Identity, error) {
	var body ticketBody
	if err := unseal(serviceKey, t.Sealed, &body); err != nil {
		return Identity{}, err
	}
	if now.UnixNano() > body.Expiry {
		return Identity{}, ErrExpired
	}
	return Identity{Name: body.Client, ID: body.ClientID, SessionKey: body.SessionKey}, nil
}

// Sign computes the per-message authenticator.
func Sign(sessionKey, msg []byte) []byte {
	m := hmac.New(sha256.New, sessionKey)
	m.Write(msg)
	return m.Sum(nil)
}

// CheckSig verifies a per-message authenticator.
func CheckSig(sessionKey, msg, sig []byte) error {
	if !hmac.Equal(Sign(sessionKey, msg), sig) {
		return ErrBadMAC
	}
	return nil
}

// SignParts is Sign over the logical concatenation of parts, streamed
// through the MAC so a bulk payload is authenticated without being
// copied into one buffer (the rpc binary lane's scatter/gather path).
func SignParts(sessionKey []byte, parts ...[]byte) []byte {
	m := hmac.New(sha256.New, sessionKey)
	for _, p := range parts {
		m.Write(p)
	}
	return m.Sum(nil)
}

// CheckSigParts verifies an authenticator computed by SignParts.
func CheckSigParts(sessionKey, sig []byte, parts ...[]byte) error {
	if !hmac.Equal(SignParts(sessionKey, parts...), sig) {
		return ErrBadMAC
	}
	return nil
}

func seal(key []byte, v any) ([]byte, error) {
	var plain bytes.Buffer
	if err := gob.NewEncoder(&plain).Encode(v); err != nil {
		return nil, err
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	return append(nonce, gcm.Seal(nil, nonce, plain.Bytes(), nil)...), nil
}

func unseal(key, sealed []byte, v any) error {
	block, err := aes.NewCipher(key)
	if err != nil {
		return err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return err
	}
	if len(sealed) < gcm.NonceSize() {
		return ErrBadTicket
	}
	plain, err := gcm.Open(nil, sealed[:gcm.NonceSize()], sealed[gcm.NonceSize():], nil)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadTicket, err)
	}
	return gob.NewDecoder(bytes.NewReader(plain)).Decode(v)
}
