package auth

import (
	"errors"
	"testing"
	"time"
)

func TestIssueAndVerify(t *testing.T) {
	kdc := NewKDC()
	kdc.AddPrincipal("alice", 100, "alice-pw")
	svc := kdc.AddPrincipal("fileserver", 1, "server-pw")

	tkt, session, err := kdc.Issue("alice", "fileserver")
	if err != nil {
		t.Fatal(err)
	}
	id, err := Verify(svc.Key, tkt, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if id.Name != "alice" || id.ID != 100 {
		t.Fatalf("identity %+v", id)
	}
	if string(id.SessionKey) != string(session) {
		t.Fatal("session keys differ between client and server")
	}
}

func TestUnknownPrincipals(t *testing.T) {
	kdc := NewKDC()
	kdc.AddPrincipal("alice", 100, "pw")
	if _, _, err := kdc.Issue("mallory", "alice"); !errors.Is(err, ErrUnknownPrincipal) {
		t.Fatalf("unknown client: %v", err)
	}
	if _, _, err := kdc.Issue("alice", "ghost"); !errors.Is(err, ErrUnknownPrincipal) {
		t.Fatalf("unknown service: %v", err)
	}
}

func TestTicketWrongKeyRejected(t *testing.T) {
	kdc := NewKDC()
	kdc.AddPrincipal("alice", 100, "pw")
	kdc.AddPrincipal("fileserver", 1, "server-pw")
	tkt, _, err := kdc.Issue("alice", "fileserver")
	if err != nil {
		t.Fatal(err)
	}
	wrong := KeyFromPassword("not-the-server-key")
	if _, err := Verify(wrong, tkt, time.Now()); !errors.Is(err, ErrBadTicket) {
		t.Fatalf("wrong key verify: %v", err)
	}
}

func TestTicketTamperRejected(t *testing.T) {
	kdc := NewKDC()
	kdc.AddPrincipal("alice", 100, "pw")
	svc := kdc.AddPrincipal("fileserver", 1, "server-pw")
	tkt, _, err := kdc.Issue("alice", "fileserver")
	if err != nil {
		t.Fatal(err)
	}
	tkt.Sealed[len(tkt.Sealed)/2] ^= 0xFF
	if _, err := Verify(svc.Key, tkt, time.Now()); !errors.Is(err, ErrBadTicket) {
		t.Fatalf("tampered ticket: %v", err)
	}
}

func TestTicketExpiry(t *testing.T) {
	kdc := NewKDC()
	now := time.Unix(1000, 0)
	kdc.Clock = func() time.Time { return now }
	kdc.TicketLifetime = time.Minute
	kdc.AddPrincipal("alice", 100, "pw")
	svc := kdc.AddPrincipal("fileserver", 1, "server-pw")
	tkt, _, err := kdc.Issue("alice", "fileserver")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(svc.Key, tkt, now.Add(30*time.Second)); err != nil {
		t.Fatalf("fresh ticket: %v", err)
	}
	if _, err := Verify(svc.Key, tkt, now.Add(2*time.Minute)); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired ticket: %v", err)
	}
}

func TestMessageSignatures(t *testing.T) {
	key := KeyFromPassword("session")
	msg := []byte("FetchStatus fid=1.2.3")
	sig := Sign(key, msg)
	if err := CheckSig(key, msg, sig); err != nil {
		t.Fatal(err)
	}
	if err := CheckSig(key, []byte("tampered"), sig); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("tampered message: %v", err)
	}
	if err := CheckSig(KeyFromPassword("other"), msg, sig); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("wrong key: %v", err)
	}
}

func TestKeyDerivationDeterministic(t *testing.T) {
	if string(KeyFromPassword("x")) != string(KeyFromPassword("x")) {
		t.Fatal("derivation not deterministic")
	}
	if string(KeyFromPassword("x")) == string(KeyFromPassword("y")) {
		t.Fatal("distinct passwords collide")
	}
	if len(KeyFromPassword("x")) != 32 {
		t.Fatal("key not 32 bytes")
	}
}
