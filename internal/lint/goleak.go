package lint

import (
	"go/ast"
	"go/token"
)

// goleak ties every spawned goroutine to a shutdown mechanism. The
// paper's daemons are long-lived: a checkpointer or write-back worker
// that nothing can stop outlives Close, keeps its owner reachable, and
// turns clean shutdown (and every test's t.Cleanup) into a hang or a
// leak.
//
// A goroutine counts as shutdown-aware when its body — transitively,
// through the function-summary database — either signals completion
// (any Done() call: sync.WaitGroup, context.Context, rpc.Peer) or blocks
// on a channel whose name marks it as a lifecycle signal (done, stop,
// quit, close*, exit, shutdown, sem), or ranges over a channel (which
// terminates when the producer closes it). Spawns of unresolvable
// function values are skipped — no body to inspect — and package main is
// exempt: a one-shot CLI's goroutines die with the process.

func runGoleak(loader *Loader, p *Package, sums *summaries) []Diagnostic {
	if p.Name == "main" || sums == nil {
		return nil
	}
	var diags []Diagnostic
	report := func(pos token.Pos) {
		diags = append(diags, mkdiag(loader.Fset, AnalyzerGoleak, pos,
			"goroutine is not tied to any shutdown mechanism (WaitGroup/Done, done channel, or context)"))
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			switch fun := gs.Call.Fun.(type) {
			case *ast.FuncLit:
				if !sums.litSummary(p, fun).aware {
					report(gs.Pos())
				}
			default:
				fn := calleeOf(p, gs.Call)
				if fn == nil {
					return true
				}
				if !sums.awareOf(fn) {
					report(gs.Pos())
				}
			}
			return true
		})
	}
	return diags
}
