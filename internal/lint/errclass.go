package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// errclass enforces the typed-error protocol the client's recovery logic
// depends on (§6.2): errors cross the RPC layer wrapped, so identity
// comparison silently stops matching.
//
// Rule 1: a module-declared sentinel error (fs.ErrStale, rpc.ErrClosed,
// client.ErrDisconnected, ...) must be tested with errors.Is, never with
// ==/!= or a switch on the error value.
//
// Rule 2: every RPC entry-point call (Config.RPCCallMethods) must
// classify its error — by wrapping the call in a classifier
// (proto.DecodeErr), or by flowing the error variable into a classifier
// or errors.Is/errors.As before the function returns. A site that
// discards the error, or passes it up raw, loses the retryable/fatal
// distinction the recovery path switches on.

func runErrClass(loader *Loader, p *Package, cfg *Config) []Diagnostic {
	// The package declaring the entry points is the wire boundary itself:
	// Peer.Call returning the transport error raw is what "classify at
	// the boundary" asks callers to wrap.
	for _, m := range cfg.RPCCallMethods {
		if declPkgOf(m) == p.ImportPath {
			return nil
		}
	}
	c := &errClassChecker{loader: loader, pkg: p}
	c.peerCalls = make(map[string]bool)
	for _, m := range cfg.RPCCallMethods {
		c.peerCalls[m] = true
	}
	c.classifiers = make(map[string]bool)
	for _, m := range cfg.ErrClassifiers {
		c.classifiers[m] = true
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd)
			}
		}
	}
	return c.diags
}

// declPkgOf extracts the declaring package path from a full method name
// like "(*decorum/internal/rpc.Peer).Call".
func declPkgOf(full string) string {
	s := full
	if i := strings.IndexByte(s, '('); i >= 0 {
		if j := strings.IndexByte(s, ')'); j > i {
			s = s[i+1 : j]
		}
	}
	s = strings.TrimPrefix(s, "*")
	if i := strings.LastIndexByte(s, '.'); i >= 0 {
		return s[:i]
	}
	return ""
}

type errClassChecker struct {
	loader      *Loader
	pkg         *Package
	peerCalls   map[string]bool
	classifiers map[string]bool
	diags       []Diagnostic
}

func (c *errClassChecker) checkFunc(fd *ast.FuncDecl) {
	c.checkSentinelComparisons(fd.Body)
	c.checkCallClassification(fd.Body)
}

// --- rule 1: sentinel identity comparison ---

func (c *errClassChecker) checkSentinelComparisons(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			for _, side := range []ast.Expr{n.X, n.Y} {
				if sv := c.sentinel(side); sv != nil {
					c.report(n.Pos(), "sentinel error %s compared with %s; use errors.Is (RPC wrapping breaks identity)",
						sv.Name(), n.Op)
					break
				}
			}
		case *ast.SwitchStmt:
			// switch err { case ErrClosed: } — same identity test in
			// disguise. A switch on err with non-sentinel cases is fine.
			if n.Tag == nil || !isErrorExpr(c.pkg, n.Tag) {
				return true
			}
			for _, cl := range n.Body.List {
				cc, ok := cl.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if sv := c.sentinel(e); sv != nil {
						c.report(e.Pos(), "sentinel error %s in a switch on an error value; use errors.Is (RPC wrapping breaks identity)",
							sv.Name())
					}
				}
			}
		}
		return true
	})
}

// sentinel resolves e to a module-declared package-level error variable.
// nil comparisons and locally scoped errors pass.
func (c *errClassChecker) sentinel(e ast.Expr) *types.Var {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	v, ok := c.pkg.Info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() { // not package-level
		return nil
	}
	if !strings.HasPrefix(v.Pkg().Path(), c.loader.ModPath) {
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return v
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func isErrorExpr(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Type != nil && isErrorType(tv.Type)
}

// --- rule 2: RPC error classification ---

func (c *errClassChecker) checkCallClassification(body *ast.BlockStmt) {
	// First pass: every error-typed variable that reaches a classifier or
	// errors.Is/errors.As anywhere in this function counts as classified.
	classified := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !c.isClassifierCall(call) {
			return true
		}
		for _, a := range call.Args {
			ast.Inspect(a, func(an ast.Node) bool {
				if aid, ok := an.(*ast.Ident); ok {
					if obj, ok := c.pkg.Info.Uses[aid].(*types.Var); ok {
						classified[obj] = true
					}
				}
				return true
			})
		}
		return true
	})

	// Second pass: judge each RPC call site by how its result is consumed.
	var walk func(n ast.Node, parent ast.Node)
	seen := make(map[*ast.CallExpr]bool)
	check := func(call *ast.CallExpr, consumer ast.Node) {
		if seen[call] {
			return
		}
		seen[call] = true
		fn := calleeOf(c.pkg, call)
		if fn == nil || !c.peerCalls[fn.FullName()] {
			return
		}
		name := fn.Name()
		switch cons := consumer.(type) {
		case *ast.CallExpr:
			// Directly nested in another call: fine iff that call
			// classifies.
			if c.isClassifierCall(cons) {
				return
			}
			c.report(call.Pos(), "error from %s passed on without classification; wrap the call in a classifier or test it with errors.Is", name)
		case *ast.AssignStmt:
			for i, rhs := range cons.Rhs {
				if rhs != call && !containsNode(rhs, call) {
					continue
				}
				if i >= len(cons.Lhs) {
					break
				}
				id, ok := cons.Lhs[i].(*ast.Ident)
				if !ok {
					break
				}
				// A tuple-returning entry point (CallBin's meta, data, err)
				// is judged by its error-typed result, not positionally.
				if len(cons.Rhs) == 1 && len(cons.Lhs) > 1 {
					for _, l := range cons.Lhs {
						li, lok := l.(*ast.Ident)
						if !lok {
							continue
						}
						obj := c.pkg.Info.Defs[li]
						if obj == nil {
							obj = c.pkg.Info.Uses[li]
						}
						if obj != nil && isErrorType(obj.Type()) {
							id = li
							break
						}
					}
				}
				if id.Name == "_" {
					c.report(call.Pos(), "error from %s discarded; classify it (errors.Is / classifier) or suppress with //lint:ignore errclass", name)
					return
				}
				obj := c.pkg.Info.Defs[id]
				if obj == nil {
					obj = c.pkg.Info.Uses[id]
				}
				if obj != nil && classified[obj] {
					return
				}
				c.report(call.Pos(), "error from %s is never classified as retryable or fatal (no errors.Is or classifier on this value)", name)
				return
			}
		case *ast.ReturnStmt:
			c.report(call.Pos(), "error from %s returned raw; classify at the RPC boundary (wrap in a classifier) so callers see stable error classes", name)
		case *ast.ExprStmt:
			c.report(call.Pos(), "error from %s discarded; classify it (errors.Is / classifier) or suppress with //lint:ignore errclass", name)
		default:
			// Other consumptions (go/defer, composite literals, binary
			// expressions like `call() != nil`) hide the class too.
			c.report(call.Pos(), "error from %s is never classified as retryable or fatal", name)
		}
	}
	walk = func(n ast.Node, parent ast.Node) {
		if n == nil {
			return
		}
		if call, ok := n.(*ast.CallExpr); ok {
			check(call, parent)
		}
		for _, child := range childNodes(n) {
			walk(child, n)
		}
	}
	walk(body, nil)
}

// isClassifierCall reports whether call classifies the error it is handed:
// a configured classifier, or errors.Is / errors.As.
func (c *errClassChecker) isClassifierCall(call *ast.CallExpr) bool {
	fn := calleeOf(c.pkg, call)
	if fn == nil {
		return false
	}
	full := fn.FullName()
	if c.classifiers[full] {
		return true
	}
	return full == "errors.Is" || full == "errors.As"
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// childNodes returns n's direct AST children in source order.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	depth := 0
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			depth--
			return false
		}
		depth++
		if depth == 2 {
			out = append(out, c)
			depth--
			return false
		}
		return true
	})
	return out
}

func (c *errClassChecker) report(pos token.Pos, format string, args ...any) {
	c.diags = append(c.diags, mkdiag(c.loader.Fset, AnalyzerErrClass, pos, format, args...))
}
