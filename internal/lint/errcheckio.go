package lint

import (
	"go/ast"
	"go/types"
)

// errcheck-io reports dropped error returns from the storage stack. The
// write-ahead invariant only holds if flush/sync/write failures propagate:
// a swallowed blockdev.Sync error means the caller believes data is
// durable when the device said otherwise. Any call whose callee is defined
// in one of Config.ErrcheckPackages and returns an error is flagged when
// the error is discarded — as a bare statement, via defer/go, or by
// assignment to blank.

func runErrcheckIO(loader *Loader, p *Package, cfg *Config) []Diagnostic {
	targets := make(map[string]bool, len(cfg.ErrcheckPackages))
	for _, t := range cfg.ErrcheckPackages {
		targets[t] = true
	}
	e := &errChecker{loader: loader, pkg: p, targets: targets}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				e.checkDiscarded(n.X)
			case *ast.DeferStmt:
				e.checkDiscarded(n.Call)
			case *ast.GoStmt:
				e.checkDiscarded(n.Call)
			case *ast.AssignStmt:
				e.checkAssign(n)
			}
			return true
		})
	}
	return e.diags
}

type errChecker struct {
	loader  *Loader
	pkg     *Package
	targets map[string]bool
	diags   []Diagnostic
}

// checkDiscarded flags a call statement whose results (error included) are
// all dropped.
func (e *errChecker) checkDiscarded(x ast.Expr) {
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return
	}
	fn := e.targetCallee(call)
	if fn == nil {
		return
	}
	if res := errorResults(fn); len(res) > 0 {
		e.report(call, fn)
	}
}

// checkAssign flags error results explicitly assigned to blank.
func (e *errChecker) checkAssign(as *ast.AssignStmt) {
	// Multi-value form: n, err := f() — one call, results map to Lhs.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		fn := e.targetCallee(call)
		if fn == nil {
			return
		}
		for _, i := range errorResults(fn) {
			if i < len(as.Lhs) && isBlank(as.Lhs[i]) {
				e.report(call, fn)
			}
		}
		return
	}
	// Parallel form: _ = f(), possibly several per statement.
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBlank(as.Lhs[i]) {
			continue
		}
		fn := e.targetCallee(call)
		if fn == nil {
			continue
		}
		if res := errorResults(fn); len(res) > 0 {
			e.report(call, fn)
		}
	}
}

// targetCallee resolves call's callee and returns it only when defined in
// one of the target packages.
func (e *errChecker) targetCallee(call *ast.CallExpr) *types.Func {
	var fn *types.Func
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ = e.pkg.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = e.pkg.Info.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil || !e.targets[fn.Pkg().Path()] {
		return nil
	}
	return fn
}

// errorResults returns the result indices of fn that have type error.
func errorResults(fn *types.Func) []int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	errType := types.Universe.Lookup("error").Type()
	var out []int
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errType) {
			out = append(out, i)
		}
	}
	return out
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func (e *errChecker) report(call *ast.CallExpr, fn *types.Func) {
	e.diags = append(e.diags, mkdiag(e.loader.Fset, AnalyzerErrcheck, call.Pos(),
		"dropped error return of %s.%s", fn.Pkg().Name(), fn.Name()))
}
