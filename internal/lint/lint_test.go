package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testLockOrder extends the default hierarchy with the testdata types so
// the ordering check has in-package targets.
func testConfig() *Config {
	cfg := DefaultConfig()
	cfg.LockOrder = append(cfg.LockOrder,
		"decorum/internal/lint/testdata/src/lockbad.Outer.mu",
		"decorum/internal/lint/testdata/src/lockbad.Inner.mu",
		"decorum/internal/lint/testdata/src/lockbad.connT.mu",
		"decorum/internal/lint/testdata/src/lockbad.vnodeT.mu",
		"decorum/internal/lint/testdata/src/lockbad.fetchT.mu",
		"decorum/internal/lint/testdata/src/lockbad.tmgrT.volMu",
		"decorum/internal/lint/testdata/src/lockbad.tshardT.mu",
		"decorum/internal/lint/testdata/src/lockbad.placementT.mu",
		"decorum/internal/lint/testdata/src/lockbad.assocT.mu",
		"decorum/internal/lint/testdata/src/lockbad.verifierT.mu",
	)
	return cfg
}

// runCase analyzes one testdata package and formats diagnostics with
// paths relative to the package directory.
func runCase(t *testing.T, name string) []string {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	diags, err := Run(testConfig(), dir, []string{dir})
	if err != nil {
		t.Fatalf("Run(%s): %v", name, err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, d := range diags {
		rel, err := filepath.Rel(abs, d.File)
		if err != nil {
			rel = d.File
		}
		lines = append(lines, fmt.Sprintf("%s:%d:%d: %s: %s", rel, d.Line, d.Col, d.Analyzer, d.Message))
	}
	return lines
}

// TestGolden compares each seeded-violation package against its
// expected.txt. Regenerate with UPDATE_GOLDEN=1 go test ./internal/lint.
func TestGolden(t *testing.T) {
	for _, name := range []string{"walbad", "lockbad", "errbad", "errbadclass", "goleakbad", "obsbad", "suppressed"} {
		t.Run(name, func(t *testing.T) {
			got := runCase(t, name)
			goldenPath := filepath.Join("testdata", "src", name, "expected.txt")
			if os.Getenv("UPDATE_GOLDEN") != "" {
				data := strings.Join(got, "\n")
				if len(got) > 0 {
					data += "\n"
				}
				if err := os.WriteFile(goldenPath, []byte(data), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			data, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1): %v", err)
			}
			var want []string
			for _, line := range strings.Split(string(data), "\n") {
				if strings.TrimSpace(line) != "" {
					want = append(want, line)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("got %d diagnostics, want %d\ngot:\n%s\nwant:\n%s",
					len(got), len(want), strings.Join(got, "\n"), strings.Join(want, "\n"))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("diagnostic %d:\n got  %s\n want %s", i, got[i], want[i])
				}
			}
		})
	}
}

// TestSeededPackagesFail asserts the acceptance criterion that the
// seeded-violation packages produce findings (non-zero driver exit).
func TestSeededPackagesFail(t *testing.T) {
	for _, name := range []string{"walbad", "lockbad", "errbad", "errbadclass", "goleakbad", "obsbad"} {
		if got := runCase(t, name); len(got) == 0 {
			t.Errorf("%s: expected findings, got none", name)
		}
	}
}

// TestSuppression asserts that properly formed ignores removed their
// findings: nothing in the suppressed package may point at the two
// suppressed lines.
func TestSuppression(t *testing.T) {
	got := runCase(t, "suppressed")
	for _, line := range got {
		if strings.HasPrefix(line, "suppressed.go:21:") || strings.HasPrefix(line, "suppressed.go:26:") {
			t.Errorf("suppressed finding leaked: %s", line)
		}
	}
	if len(got) == 0 {
		t.Error("expected surviving findings in suppressed package")
	}
}

// TestExpandPatterns checks go-tool-style pattern handling: testdata is
// skipped by ./... expansion.
func TestExpandPatterns(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := ExpandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("./... expansion included testdata dir %s", d)
		}
	}
	found := false
	for _, d := range dirs {
		if strings.HasSuffix(d, filepath.Join("internal", "lint")) {
			found = true
		}
	}
	if !found {
		t.Error("./... expansion missed internal/lint")
	}
}

// TestGuardDirective covers the annotation grammar edge cases.
func TestGuardDirectiveParsing(t *testing.T) {
	cases := []struct {
		comment string
		want    string
	}{
		{"// guarded by mu", "mu"},
		{"// guarded by pool.mu", "pool.mu"},
		{"// guarded by mu (whole-volume tokens)", "mu"},
		{"// guarded by Layer.mu (the table lock, not the per-file mu)", "Layer.mu"},
		{"// something else", ""},
	}
	for _, c := range cases {
		got := guardDirectiveFromText(c.comment)
		if got != c.want {
			t.Errorf("%q: got %q, want %q", c.comment, got, c.want)
		}
	}
}
