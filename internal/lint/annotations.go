package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// guard names one mutex: the types.Var of the mutex field, so that every
// access through any instance of the owning struct type shares the key.
// Granularity is deliberately type-level — lockcheck proves "some <T>.mu
// is held", not "this instance's mu" — which catches the forgot-to-lock
// bug class without alias analysis.
type guard struct {
	mutex *types.Var
	rw    bool   // sync.RWMutex (RLock/RUnlock exist)
	name  string // display name, e.g. "Pool.mu" or "Buf.pool.mu"
}

type annotations struct {
	// fieldGuards maps an annotated struct field to its guard.
	fieldGuards map[*types.Var]*guard
	// guardNames maps mutex field var -> display name (for messages).
	guardNames map[*types.Var]string
	// funcHolds: the function assumes these mutexes are held on entry.
	funcHolds map[*types.Func][]*guard
	// funcLocks/funcRLocks/funcUnlocks: calling the function has this
	// locking effect on the receiver's mutexes.
	funcLocks   map[*types.Func][]*guard
	funcRLocks  map[*types.Func][]*guard
	funcUnlocks map[*types.Func][]*guard
	// ranks orders mutexes in the configured hierarchy (lower = acquire
	// first); mutexes absent from the hierarchy have no rank.
	ranks     map[*types.Var]int
	rankNames []string
}

// collectAnnotations scans every loaded package for guard annotations.
//
// Grammar:
//
//	field T // guarded by <path>
//
// where <path> is either a field path within the same struct ("mu",
// "pool.mu") or a Type.field path in the same package ("Layer.mu") for
// fields guarded by an owning object's mutex. On functions:
//
//	//lint:holds <path>    assume held on entry (callee of a locked path)
//	//lint:locks <path>    calling this locks <path> exclusively
//	//lint:rlocks <path>   calling this read-locks <path>
//	//lint:unlocks <path>  calling this releases <path>
//
// resolved against the method's receiver type. Functions whose name ends
// in "Locked" are exempt from guard checks entirely (the repo's existing
// convention for must-hold helpers).
func collectAnnotations(loader *Loader, cfg *Config) (*annotations, []Diagnostic) {
	ann := &annotations{
		fieldGuards: make(map[*types.Var]*guard),
		guardNames:  make(map[*types.Var]string),
		funcHolds:   make(map[*types.Func][]*guard),
		funcLocks:   make(map[*types.Func][]*guard),
		funcRLocks:  make(map[*types.Func][]*guard),
		funcUnlocks: make(map[*types.Func][]*guard),
		ranks:       make(map[*types.Var]int),
	}
	var diags []Diagnostic
	for _, p := range loader.Packages() {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.TypeSpec:
					st, ok := n.Type.(*ast.StructType)
					if !ok {
						return true
					}
					diags = append(diags, ann.collectStruct(loader, p, n, st)...)
				case *ast.FuncDecl:
					diags = append(diags, ann.collectFunc(loader, p, n)...)
				}
				return true
			})
		}
	}
	ann.resolveRanks(loader, cfg)
	return ann, diags
}

// collectStruct parses "guarded by" field annotations of one struct.
func (ann *annotations) collectStruct(loader *Loader, p *Package, spec *ast.TypeSpec, st *ast.StructType) []Diagnostic {
	var diags []Diagnostic
	tn, _ := p.Info.Defs[spec.Name].(*types.TypeName)
	if tn == nil {
		return nil
	}
	structType, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for _, field := range st.Fields.List {
		path := guardDirective(field.Doc, field.Comment)
		if path == "" {
			continue
		}
		g, err := resolveGuardPath(p, structType, tn, path)
		if err != nil {
			diags = append(diags, mkdiag(loader.Fset, AnalyzerDirective, field.Pos(),
				"bad guard annotation %q on %s: %v", path, tn.Name(), err))
			continue
		}
		for _, name := range field.Names {
			if fv, ok := p.Info.Defs[name].(*types.Var); ok {
				ann.fieldGuards[fv] = g
			}
		}
	}
	return diags
}

// guardDirective extracts the path from a "guarded by <path>" comment line
// in either the field's doc comment or its trailing comment.
func guardDirective(groups ...*ast.CommentGroup) string {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if path := guardDirectiveFromText(c.Text); path != "" {
				return path
			}
		}
	}
	return ""
}

// guardDirectiveFromText parses one comment line. Only the first token
// after "guarded by" is the path; trailing prose ("guarded by mu
// (whole-volume)") is allowed.
func guardDirectiveFromText(text string) string {
	line := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	rest, ok := strings.CutPrefix(line, "guarded by ")
	if !ok {
		return ""
	}
	if fields := strings.Fields(rest); len(fields) > 0 {
		return strings.TrimRight(fields[0], ".,;:)")
	}
	return ""
}

// collectFunc parses //lint:holds|locks|rlocks|unlocks directives from a
// function's doc comment.
func (ann *annotations) collectFunc(loader *Loader, p *Package, fd *ast.FuncDecl) []Diagnostic {
	if fd.Doc == nil {
		return nil
	}
	fn, _ := p.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return nil
	}
	var diags []Diagnostic
	for _, c := range fd.Doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		var kind, rest string
		for _, k := range []string{"lint:holds ", "lint:locks ", "lint:rlocks ", "lint:unlocks "} {
			if r, ok := strings.CutPrefix(text, k); ok {
				kind, rest = strings.TrimSuffix(strings.TrimPrefix(k, "lint:"), " "), r
				break
			}
		}
		if kind == "" {
			continue
		}
		path := strings.TrimSpace(rest)
		g, err := ann.resolveForFunc(p, fn, path)
		if err != nil {
			diags = append(diags, mkdiag(loader.Fset, AnalyzerDirective, c.Pos(),
				"bad //lint:%s directive %q on %s: %v", kind, path, fn.Name(), err))
			continue
		}
		switch kind {
		case "holds":
			ann.funcHolds[fn] = append(ann.funcHolds[fn], g)
		case "locks":
			ann.funcLocks[fn] = append(ann.funcLocks[fn], g)
		case "rlocks":
			ann.funcRLocks[fn] = append(ann.funcRLocks[fn], g)
		case "unlocks":
			ann.funcUnlocks[fn] = append(ann.funcUnlocks[fn], g)
		}
	}
	return diags
}

// resolveForFunc resolves a directive path against fn's receiver type, or
// against package-level Type.field syntax for plain functions.
func (ann *annotations) resolveForFunc(p *Package, fn *types.Func, path string) (*guard, error) {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			if structType, ok := named.Underlying().(*types.Struct); ok {
				return resolveGuardPath(p, structType, named.Obj(), path)
			}
		}
	}
	return resolveGuardPath(p, nil, nil, path)
}

// resolveGuardPath resolves <path> to the mutex field it names. The first
// segment is looked up as a field of structType; failing that, as a type
// name in the package scope (for "Type.field" cross-struct guards).
func resolveGuardPath(p *Package, structType *types.Struct, owner *types.TypeName, path string) (*guard, error) {
	segs := strings.Split(path, ".")
	if len(segs) == 0 || path == "" {
		return nil, fmt.Errorf("empty path")
	}
	cur := structType
	display := ""
	if owner != nil {
		display = owner.Name()
	}
	// Cross-struct form: first segment names a struct type in the package.
	if obj := p.Types.Scope().Lookup(segs[0]); obj != nil {
		if tn, ok := obj.(*types.TypeName); ok {
			if st, ok := tn.Type().Underlying().(*types.Struct); ok && len(segs) > 1 {
				cur = st
				display = tn.Name()
				segs = segs[1:]
			}
		}
	}
	if cur == nil {
		return nil, fmt.Errorf("no struct to resolve %q against", path)
	}
	var fv *types.Var
	for i, seg := range segs {
		fv = nil
		for j := 0; j < cur.NumFields(); j++ {
			if cur.Field(j).Name() == seg {
				fv = cur.Field(j)
				break
			}
		}
		if fv == nil {
			return nil, fmt.Errorf("no field %q in %s", seg, display)
		}
		display += "." + seg
		if i == len(segs)-1 {
			break
		}
		ft := fv.Type()
		if ptr, ok := ft.(*types.Pointer); ok {
			ft = ptr.Elem()
		}
		st, ok := ft.Underlying().(*types.Struct)
		if !ok {
			return nil, fmt.Errorf("field %q is not a struct", seg)
		}
		cur = st
	}
	rw, ok := mutexKind(fv.Type())
	if !ok {
		return nil, fmt.Errorf("field %q is not a sync.Mutex or sync.RWMutex", segs[len(segs)-1])
	}
	return &guard{mutex: fv, rw: rw, name: display}, nil
}

// mutexKind reports whether t is a mutex type and whether it is an
// RWMutex.
func mutexKind(t types.Type) (rw, ok bool) {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// resolveRanks maps the configured hierarchy entries to mutex field vars.
// Entries whose package is not loaded are skipped: the hierarchy only
// matters where its participants are in scope.
func (ann *annotations) resolveRanks(loader *Loader, cfg *Config) {
	for i, entry := range cfg.LockOrder {
		dot := strings.LastIndex(entry, ".")
		if dot < 0 {
			continue
		}
		field := entry[dot+1:]
		rest := entry[:dot]
		dot2 := strings.LastIndex(rest, ".")
		if dot2 < 0 {
			continue
		}
		pkgPath, typeName := rest[:dot2], rest[dot2+1:]
		p, ok := loader.pkgs[pkgPath]
		if !ok {
			continue
		}
		obj := p.Types.Scope().Lookup(typeName)
		tn, ok := obj.(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for j := 0; j < st.NumFields(); j++ {
			if st.Field(j).Name() == field {
				ann.ranks[st.Field(j)] = i
				ann.guardNames[st.Field(j)] = typeName + "." + field
				break
			}
		}
	}
	ann.rankNames = cfg.LockOrder
}
