package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked module package. Only non-test files
// are loaded: the analyzers enforce production-code invariants, and test
// code routinely drops errors or touches state single-threaded.
type Package struct {
	Dir        string
	ImportPath string
	Name       string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader parses and type-checks packages of one module using only the
// standard library (go/parser + go/types). Module-internal imports are
// resolved by directory layout under the module root; standard-library
// imports are delegated to the stdlib source importer, so the loader works
// offline and adds no dependencies.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string

	std     types.ImporterFrom
	pkgs    map[string]*Package // by import path
	order   []string            // dependency-first load order
	loading map[string]bool     // import-cycle detection
}

// NewLoader finds the enclosing module of startDir and prepares a loader.
func NewLoader(startDir string) (*Loader, error) {
	root, modPath, err := findModule(startDir)
	if err != nil {
		return nil, err
	}
	// The source importer consults go/build; with cgo disabled every
	// stdlib package (net, crypto, ...) type-checks from pure Go source.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return &Loader{
		Fset:    fset,
		ModRoot: root,
		ModPath: modPath,
		std:     std,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and reads the
// module path from its first "module" directive.
func findModule(dir string) (root, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// importPathFor maps a directory under the module root to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModPath)
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// dirFor is the inverse of importPathFor.
func (l *Loader) dirFor(path string) string {
	if path == l.ModPath {
		return l.ModRoot
	}
	return filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModPath+"/")))
}

func (l *Loader) isModulePath(path string) bool {
	return path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/")
}

// Load parses and type-checks the package in dir (and, recursively, its
// module-internal dependencies). Results are cached per import path.
func (l *Loader) Load(dir string) (*Package, error) {
	ip, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.pkgs[ip]; ok {
		return p, nil
	}
	if l.loading[ip] {
		return nil, fmt.Errorf("lint: import cycle through %s", ip)
	}
	l.loading[ip] = true
	defer delete(l.loading, ip)

	files, names, err := l.parseDir(l.dirFor(ip))
	if err != nil {
		return nil, err
	}
	tinfo := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(ip, l.Fset, files, tinfo)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", ip, err)
	}
	p := &Package{
		Dir:        l.dirFor(ip),
		ImportPath: ip,
		Name:       names,
		Files:      files,
		Types:      tpkg,
		Info:       tinfo,
	}
	l.pkgs[ip] = p
	l.order = append(l.order, ip)
	return p, nil
}

// parseDir parses the non-test Go files of one directory.
func (l *Loader) parseDir(dir string) ([]*ast.File, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", err
	}
	var files []*ast.File
	pkgName := ""
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, "", err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, "", fmt.Errorf("lint: %s: mixed packages %s and %s", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, "", fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	return files, pkgName, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// from source under the module root, everything else goes to the stdlib
// source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.isModulePath(path) {
		p, err := l.Load(l.dirFor(path))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, l.ModRoot, mode)
}

// Packages returns every loaded package (dependencies included) in
// dependency-first order.
func (l *Loader) Packages() []*Package {
	out := make([]*Package, 0, len(l.order))
	for _, ip := range l.order {
		out = append(out, l.pkgs[ip])
	}
	return out
}

// ExpandPatterns resolves go-style package patterns ("./...", "dir",
// "dir/...") to directories containing buildable Go files. Like the go
// tool it skips testdata, vendor, and directories whose name starts with
// "." or "_".
func ExpandPatterns(root string, patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if abs, err := filepath.Abs(d); err == nil {
			d = abs
		}
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		base, recursive := pat, false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base, recursive = rest, true
		}
		if base == "" || base == "." {
			base = root
		}
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, base)
		}
		if !recursive {
			if hasGoFiles(base) {
				add(base)
			} else {
				return nil, fmt.Errorf("no buildable Go files in %s", base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, "_") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}
