package lint

import (
	"go/ast"
	"strings"
)

// obscheck keeps metric-cell resolution off hot paths. Registry.Counter /
// Gauge / Histogram are lookup-or-create: a mutex plus a map access per
// call. That is fine once, at wiring time — it is how components adopt
// their cells — but calling it per operation puts a global lock on every
// read and write the paper's data path worked hard to shard. The rule:
// resolve the cell in a constructor or wiring function (New*, Attach*,
// Register*, Instrument*, Open*, Setup*, main, init), store the handle,
// and bump the handle on the hot path.

// obsAllowedPrefixes are function-name prefixes (case-insensitive) whose
// bodies may look cells up by name.
var obsAllowedPrefixes = []string{
	"new", "attach", "register", "instrument", "open", "setup", "init", "main",
}

func runObscheck(loader *Loader, p *Package, cfg *Config) []Diagnostic {
	if cfg.ObsRegistryType == "" {
		return nil
	}
	// The registry package itself implements the lookups.
	regPkg := cfg.ObsRegistryType
	if i := strings.LastIndex(regPkg, "."); i >= 0 {
		regPkg = regPkg[:i]
	}
	if p.ImportPath == regPkg {
		return nil
	}
	lookups := map[string]bool{
		"(*" + cfg.ObsRegistryType + ").Counter":   true,
		"(*" + cfg.ObsRegistryType + ").Gauge":     true,
		"(*" + cfg.ObsRegistryType + ").Histogram": true,
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || obsWiringFunc(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeOf(p, call)
				if fn == nil || !lookups[fn.FullName()] {
					return true
				}
				name := constStringArg(p, call, 0)
				diags = append(diags, mkdiag(loader.Fset, AnalyzerObs, call.Pos(),
					"obs cell %s(%q) looked up per call in %s; resolve it once at wiring time and store the handle",
					fn.Name(), name, fd.Name.Name))
				return true
			})
		}
	}
	return diags
}

// obsWiringFunc reports whether a function name marks an init-time wiring
// context where by-name lookups are the intended API.
func obsWiringFunc(name string) bool {
	lower := strings.ToLower(name)
	for _, pre := range obsAllowedPrefixes {
		if strings.HasPrefix(lower, pre) {
			return true
		}
	}
	return false
}
