package lint

import (
	"go/ast"
	"go/types"
)

// waldiscipline enforces the §2.2 logging rule: outside the buffer/WAL
// layer itself, the byte slice returned by (*buffer.Buf).Data() is
// read-only. A write through it — index assignment, copy, or append —
// bypasses the redo log and becomes an unlogged mutation that crash
// recovery cannot replay. The checker taints every local derived from a
// Data() call (including re-slicings) and flags mutating operations whose
// target is tainted.

func runWALDiscipline(loader *Loader, p *Package, cfg *Config) []Diagnostic {
	for _, allowed := range cfg.WALAllowedPackages {
		if p.ImportPath == allowed {
			return nil
		}
	}
	w := &walChecker{loader: loader, pkg: p, cfg: cfg}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				w.checkFunc(fd)
			}
		}
	}
	return w.diags
}

type walChecker struct {
	loader *Loader
	pkg    *Package
	cfg    *Config
	diags  []Diagnostic
}

func (w *walChecker) checkFunc(fd *ast.FuncDecl) {
	tainted := w.taintedLocals(fd.Body)
	isTainted := func(e ast.Expr) bool { return w.taintedExpr(e, tainted) }
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if base, ok := writeBase(lhs); ok && isTainted(base) {
					w.report(lhs, "write into Buf.Data() backing array outside the logging primitives (use Tx.Update or Buf.WriteUnlogged)")
				}
			}
		case *ast.IncDecStmt:
			if base, ok := writeBase(n.X); ok && isTainted(base) {
				w.report(n.X, "write into Buf.Data() backing array outside the logging primitives (use Tx.Update or Buf.WriteUnlogged)")
			}
		case *ast.CallExpr:
			if name, ok := w.builtinName(n); ok && len(n.Args) > 0 {
				switch name {
				case "copy":
					if isTainted(n.Args[0]) {
						w.report(n, "copy into Buf.Data() backing array outside the logging primitives (use Tx.Update or Buf.WriteUnlogged)")
					}
				case "append":
					if isTainted(n.Args[0]) {
						w.report(n, "append to a Buf.Data() slice mutates the backing array outside the logging primitives")
					}
				}
			}
		}
		return true
	})
}

// writeBase unwraps an assignment target to the slice expression being
// indexed or sliced, if any.
func writeBase(e ast.Expr) (ast.Expr, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			return x.X, true
		case *ast.SliceExpr:
			return x.X, true
		default:
			return nil, false
		}
	}
}

// taintedLocals computes the set of local variables holding (a re-slicing
// of) a Data() result, by fixpoint over the function's assignments.
func (w *walChecker) taintedLocals(body *ast.BlockStmt) map[types.Object]bool {
	tainted := make(map[types.Object]bool)
	for {
		changed := false
		mark := func(lhs ast.Expr, rhs ast.Expr) {
			id, ok := lhs.(*ast.Ident)
			if !ok || !w.taintedExpr(rhs, tainted) {
				return
			}
			obj := w.pkg.Info.Defs[id]
			if obj == nil {
				obj = w.pkg.Info.Uses[id]
			}
			if obj != nil && !tainted[obj] {
				tainted[obj] = true
				changed = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						mark(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						mark(n.Names[i], n.Values[i])
					}
				}
			}
			return true
		})
		if !changed {
			return tainted
		}
	}
}

// taintedExpr reports whether e evaluates to (a re-slicing of) a Data()
// result.
func (w *walChecker) taintedExpr(e ast.Expr, tainted map[types.Object]bool) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			obj := w.pkg.Info.Uses[x]
			if obj == nil {
				obj = w.pkg.Info.Defs[x]
			}
			return obj != nil && tainted[obj]
		case *ast.CallExpr:
			return w.isDataCall(x)
		default:
			return false
		}
	}
}

// isDataCall reports whether call invokes the configured Data accessor.
func (w *walChecker) isDataCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := w.pkg.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.FullName() == w.cfg.WALDataMethod
}

// builtinName returns the name of the builtin being called, if any.
func (w *walChecker) builtinName(call *ast.CallExpr) (string, bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return "", false
	}
	if _, ok := w.pkg.Info.Uses[id].(*types.Builtin); !ok {
		return "", false
	}
	return id.Name, true
}

func (w *walChecker) report(n ast.Node, format string, args ...any) {
	w.diags = append(w.diags, mkdiag(w.loader.Fset, AnalyzerWAL, n.Pos(), format, args...))
}
