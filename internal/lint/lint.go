// Package lint implements dfsvet, the project-specific static-analysis
// suite. The compiler cannot see the invariants the paper's correctness
// story rests on; these analyzers can:
//
//   - waldiscipline: §2.2 requires that higher layers modify cached disk
//     buffers only through the logging primitives. Any write into a
//     (*buffer.Buf).Data() slice outside buffer.Tx.Update /
//     Buf.WriteUnlogged is an unlogged mutation — a crash-consistency bug
//     that no test catches until a crash lands in exactly the wrong spot.
//   - lockcheck: struct fields annotated "guarded by <path>" must only be
//     touched while the named mutex is held; helper methods declare their
//     locking effects with //lint:locks, //lint:rlocks, //lint:unlocks and
//     //lint:holds directives. A configured lock hierarchy (the documented
//     server → host → token-manager order) is enforced where acquisitions
//     are visible intra-procedurally, and double acquisition of the same
//     mutex is reported.
//   - errcheck-io: an error dropped from a blockdev / wal / buffer call is
//     a durability bug — the write-ahead rule only holds if flush and sync
//     failures propagate. Every dropped error result from those packages
//     is reported.
//
// Findings are suppressed with
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// on (or immediately above) the offending line, or for a whole file with
// //lint:file-ignore <analyzer> <reason>. The driver is built only on
// go/parser and go/types, preserving the module's no-dependency rule.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Analyzer names, as used in diagnostics and ignore directives.
const (
	AnalyzerWAL       = "waldiscipline"
	AnalyzerLock      = "lockcheck"
	AnalyzerErrcheck  = "errcheck-io"
	AnalyzerErrClass  = "errclass"
	AnalyzerGoleak    = "goleak"
	AnalyzerObs       = "obscheck"
	AnalyzerDirective = "directive"
)

// AnalyzerNames lists every selectable analyzer (for cmd/dfsvet -analyzers).
var AnalyzerNames = []string{
	AnalyzerWAL, AnalyzerLock, AnalyzerErrcheck,
	AnalyzerErrClass, AnalyzerGoleak, AnalyzerObs,
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Config parameterizes the suite.
type Config struct {
	// WALDataMethod is the full name of the accessor returning raw buffer
	// data; writes through its result are what waldiscipline hunts.
	WALDataMethod string
	// WALAllowedPackages may mutate buffer data directly: the buffer/log
	// layer itself, which implements the sanctioned mutation paths
	// (Tx.Update, WriteUnlogged) and recovery/salvage.
	WALAllowedPackages []string
	// ErrcheckPackages are the packages whose dropped error returns
	// errcheck-io reports.
	ErrcheckPackages []string
	// LockOrder lists mutexes as "importpath.Type.field" from outermost to
	// innermost; acquiring an earlier mutex while holding a later one is a
	// hierarchy violation.
	LockOrder []string
	// RPCCallMethods are the full names of the RPC entry points
	// (Peer.Call and friends). Holding a mutex across one of them adds a
	// lock-order edge to the called method's handler, and errclass
	// requires their errors to be classified.
	RPCCallMethods []string
	// RPCHandleMethod is the full name of the handler-registration method
	// (Peer.Handle); its call sites tie rpc(method) graph nodes to the
	// locks their handlers take.
	RPCHandleMethod string
	// ErrClassifiers are functions whose consumption of an error counts
	// as classifying it retryable/fatal (in addition to errors.Is/As).
	ErrClassifiers []string
	// ObsRegistryType is the metrics registry type whose lookup-by-name
	// methods (Counter/Gauge/Histogram) obscheck keeps off hot paths.
	ObsRegistryType string
	// Analyzers, when non-empty, restricts the run to the named analyzers.
	Analyzers []string
}

// enabled reports whether the named analyzer should run.
func (c *Config) enabled(name string) bool {
	if len(c.Analyzers) == 0 {
		return true
	}
	for _, n := range c.Analyzers {
		if n == name {
			return true
		}
	}
	return false
}

// DefaultConfig returns the DEcorum tree's configuration.
func DefaultConfig() *Config {
	return &Config{
		WALDataMethod: "(*decorum/internal/buffer.Buf).Data",
		WALAllowedPackages: []string{
			"decorum/internal/buffer",
			"decorum/internal/wal",
		},
		ErrcheckPackages: []string{
			"decorum/internal/blockdev",
			"decorum/internal/wal",
			"decorum/internal/buffer",
		},
		// The documented hierarchy (§3.2, §6.1): server state, then the
		// per-client host record, then the token manager.
		LockOrder: []string{
			"decorum/internal/server.Server.mu",
			"decorum/internal/server.clientHost.mu",
			"decorum/internal/token.Manager.hostsMu",
			"decorum/internal/token.Manager.volMu",
			"decorum/internal/token.shard.mu",
			// Client data path (§6.1, §6.2): the whole-operation lock,
			// then the vnode table, then the per-association connection
			// state (recovery flips it while the table is walked), then
			// the vnode field lock, then the single-flight fetch table.
			"decorum/internal/client.cvnode.hmu",
			// Striping placement cache (S28): consulted while a
			// high-level operation holds hmu, before the association is
			// chosen — so it ranks above Client.mu and is never held
			// across an RPC or another lock.
			"decorum/internal/client.placement.mu",
			"decorum/internal/client.Client.mu",
			"decorum/internal/client.serverConn.mu",
			"decorum/internal/client.cvnode.lmu",
			"decorum/internal/client.fetchTable.mu",
			// Storage stack, at the bottom: both the server's volume path
			// and the client's cache hold their own locks while calling
			// into buffer and wal, so shard.mu and Log.mu rank innermost.
			// A shard lock may be held while flushing the log (the WAL
			// rule in destage), so shard.mu ranks above the log mutex;
			// wal never calls back into buffer.
			"decorum/internal/buffer.shard.mu",
			"decorum/internal/wal.Log.mu",
			// The client's mismatch bookkeeping (S30) is a leaf: Note and
			// Clear run from the verify path with data-path locks already
			// held, and nothing is acquired under it — so it ranks
			// innermost, below even the storage stack.
			"decorum/internal/integrity.Verifier.mu",
		},
		RPCCallMethods: []string{
			"(*decorum/internal/rpc.Peer).Call",
			"(*decorum/internal/rpc.Peer).CallPriority",
			"(*decorum/internal/rpc.Peer).CallTraced",
			"(*decorum/internal/rpc.Peer).CallBin",
		},
		RPCHandleMethod: "(*decorum/internal/rpc.Peer).Handle",
		ErrClassifiers: []string{
			"decorum/internal/proto.DecodeErr",
		},
		ObsRegistryType: "decorum/internal/obs.Registry",
	}
}

// Run loads the packages in dirs (plus dependencies) and runs every
// analyzer over the packages in dirs. Diagnostics come back sorted by
// position with suppression directives already applied.
func Run(cfg *Config, startDir string, dirs []string) ([]Diagnostic, error) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	loader, err := NewLoader(startDir)
	if err != nil {
		return nil, err
	}
	var targets []*Package
	for _, dir := range dirs {
		p, err := loader.Load(dir)
		if err != nil {
			return nil, err
		}
		targets = append(targets, p)
	}
	return RunPackages(cfg, loader, targets), nil
}

// RunPackages analyzes already-loaded packages. Annotations are collected
// over every loaded package, dependencies included: a target package may
// access exported guarded fields of a dependency.
func RunPackages(cfg *Config, loader *Loader, targets []*Package) []Diagnostic {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	ann, diags := collectAnnotations(loader, cfg)
	var sums *summaries
	if cfg.enabled(AnalyzerLock) || cfg.enabled(AnalyzerGoleak) {
		sums = computeSummaries(loader, cfg, ann)
	}
	inTargets := make(map[string]bool, len(targets))
	for _, p := range targets {
		inTargets[p.ImportPath] = true
	}
	// The lock-order graph needs edges from every loaded package, not just
	// the analysis targets: a target may hold a mutex across a call whose
	// counterpart edge lives in a dependency. Run lockcheck over the
	// non-target packages for the edges only; their diagnostics are
	// dropped.
	if cfg.enabled(AnalyzerLock) {
		for _, p := range loader.Packages() {
			if !inTargets[p.ImportPath] {
				runLockcheck(loader, p, ann, sums)
			}
		}
	}
	seen := make(map[string]bool)
	var igs []*ignoreIndex
	for _, p := range targets {
		if seen[p.ImportPath] {
			continue
		}
		seen[p.ImportPath] = true
		var pkgDiags []Diagnostic
		if cfg.enabled(AnalyzerWAL) {
			pkgDiags = append(pkgDiags, runWALDiscipline(loader, p, cfg)...)
		}
		if cfg.enabled(AnalyzerLock) {
			pkgDiags = append(pkgDiags, runLockcheck(loader, p, ann, sums)...)
		}
		if cfg.enabled(AnalyzerErrcheck) {
			pkgDiags = append(pkgDiags, runErrcheckIO(loader, p, cfg)...)
		}
		if cfg.enabled(AnalyzerErrClass) {
			pkgDiags = append(pkgDiags, runErrClass(loader, p, cfg)...)
		}
		if cfg.enabled(AnalyzerGoleak) {
			pkgDiags = append(pkgDiags, runGoleak(loader, p, sums)...)
		}
		if cfg.enabled(AnalyzerObs) {
			pkgDiags = append(pkgDiags, runObscheck(loader, p, cfg)...)
		}
		ig, igDiags := collectIgnores(loader, p)
		pkgDiags = append(pkgDiags, igDiags...)
		diags = append(diags, ig.apply(pkgDiags)...)
		igs = append(igs, ig)
	}
	// Whole-program findings: lock-order cycles span packages, so they are
	// reported once, after every target contributed its edges.
	if cfg.enabled(AnalyzerLock) && sums != nil {
		for _, d := range sums.cycleDiagnostics() {
			supp := false
			for _, ig := range igs {
				if ig.suppressed(d) {
					supp = true
					break
				}
			}
			if !supp {
				diags = append(diags, d)
			}
		}
	}
	sortDiagnostics(diags)
	return dedup(diags)
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

func dedup(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	var last Diagnostic
	for i, d := range diags {
		if i > 0 && d == last {
			continue
		}
		out = append(out, d)
		last = d
	}
	return out
}

// diag builds a Diagnostic at pos.
func mkdiag(fset *token.FileSet, analyzer string, pos token.Pos, format string, args ...any) Diagnostic {
	p := fset.Position(pos)
	return Diagnostic{
		Analyzer: analyzer,
		Pos:      p,
		File:     p.Filename,
		Line:     p.Line,
		Col:      p.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

// ignoreIndex records suppression directives for one package.
type ignoreIndex struct {
	// fileIgnores maps filename -> analyzers suppressed for the file.
	fileIgnores map[string]map[string]bool
	// lineIgnores maps filename -> line -> analyzers suppressed at that
	// line and the next.
	lineIgnores map[string]map[int]map[string]bool
}

// collectIgnores scans a package's comments for lint directives. Malformed
// directives (no reason given) are themselves diagnostics: an unexplained
// suppression is how invariant rot starts.
func collectIgnores(loader *Loader, p *Package) (*ignoreIndex, []Diagnostic) {
	idx := &ignoreIndex{
		fileIgnores: make(map[string]map[string]bool),
		lineIgnores: make(map[string]map[int]map[string]bool),
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				rest, isLine := strings.CutPrefix(text, "lint:ignore ")
				restF, isFile := strings.CutPrefix(text, "lint:file-ignore ")
				if !isLine && !isFile {
					continue
				}
				if isFile {
					rest = restF
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					diags = append(diags, mkdiag(loader.Fset, AnalyzerDirective, c.Pos(),
						"malformed lint directive: want //lint:%s <analyzer> <reason>",
						map[bool]string{true: "file-ignore", false: "ignore"}[isFile]))
					continue
				}
				pos := loader.Fset.Position(c.Pos())
				names := strings.Split(fields[0], ",")
				if isFile {
					m := idx.fileIgnores[pos.Filename]
					if m == nil {
						m = make(map[string]bool)
						idx.fileIgnores[pos.Filename] = m
					}
					for _, n := range names {
						m[n] = true
					}
					continue
				}
				lm := idx.lineIgnores[pos.Filename]
				if lm == nil {
					lm = make(map[int]map[string]bool)
					idx.lineIgnores[pos.Filename] = lm
				}
				am := lm[pos.Line]
				if am == nil {
					am = make(map[string]bool)
					lm[pos.Line] = am
				}
				for _, n := range names {
					am[n] = true
				}
			}
		}
	}
	return idx, diags
}

// apply filters out suppressed diagnostics.
func (ig *ignoreIndex) apply(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if ig.suppressed(d) {
			continue
		}
		out = append(out, d)
	}
	return out
}

func (ig *ignoreIndex) suppressed(d Diagnostic) bool {
	if d.Analyzer == AnalyzerDirective {
		return false
	}
	if m, ok := ig.fileIgnores[d.File]; ok && (m[d.Analyzer] || m["*"]) {
		return true
	}
	lm, ok := ig.lineIgnores[d.File]
	if !ok {
		return false
	}
	// A directive suppresses its own line (trailing comment) and the line
	// directly below it (comment on its own line).
	for _, line := range []int{d.Line, d.Line - 1} {
		if am, ok := lm[line]; ok && (am[d.Analyzer] || am["*"]) {
			return true
		}
	}
	return false
}
