// Package lint implements dfsvet, the project-specific static-analysis
// suite. The compiler cannot see the invariants the paper's correctness
// story rests on; these analyzers can:
//
//   - waldiscipline: §2.2 requires that higher layers modify cached disk
//     buffers only through the logging primitives. Any write into a
//     (*buffer.Buf).Data() slice outside buffer.Tx.Update /
//     Buf.WriteUnlogged is an unlogged mutation — a crash-consistency bug
//     that no test catches until a crash lands in exactly the wrong spot.
//   - lockcheck: struct fields annotated "guarded by <path>" must only be
//     touched while the named mutex is held; helper methods declare their
//     locking effects with //lint:locks, //lint:rlocks, //lint:unlocks and
//     //lint:holds directives. A configured lock hierarchy (the documented
//     server → host → token-manager order) is enforced where acquisitions
//     are visible intra-procedurally, and double acquisition of the same
//     mutex is reported.
//   - errcheck-io: an error dropped from a blockdev / wal / buffer call is
//     a durability bug — the write-ahead rule only holds if flush and sync
//     failures propagate. Every dropped error result from those packages
//     is reported.
//
// Findings are suppressed with
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// on (or immediately above) the offending line, or for a whole file with
// //lint:file-ignore <analyzer> <reason>. The driver is built only on
// go/parser and go/types, preserving the module's no-dependency rule.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Analyzer names, as used in diagnostics and ignore directives.
const (
	AnalyzerWAL       = "waldiscipline"
	AnalyzerLock      = "lockcheck"
	AnalyzerErrcheck  = "errcheck-io"
	AnalyzerDirective = "directive"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Config parameterizes the suite.
type Config struct {
	// WALDataMethod is the full name of the accessor returning raw buffer
	// data; writes through its result are what waldiscipline hunts.
	WALDataMethod string
	// WALAllowedPackages may mutate buffer data directly: the buffer/log
	// layer itself, which implements the sanctioned mutation paths
	// (Tx.Update, WriteUnlogged) and recovery/salvage.
	WALAllowedPackages []string
	// ErrcheckPackages are the packages whose dropped error returns
	// errcheck-io reports.
	ErrcheckPackages []string
	// LockOrder lists mutexes as "importpath.Type.field" from outermost to
	// innermost; acquiring an earlier mutex while holding a later one is a
	// hierarchy violation.
	LockOrder []string
}

// DefaultConfig returns the DEcorum tree's configuration.
func DefaultConfig() *Config {
	return &Config{
		WALDataMethod: "(*decorum/internal/buffer.Buf).Data",
		WALAllowedPackages: []string{
			"decorum/internal/buffer",
			"decorum/internal/wal",
		},
		ErrcheckPackages: []string{
			"decorum/internal/blockdev",
			"decorum/internal/wal",
			"decorum/internal/buffer",
		},
		// The documented hierarchy (§3.2, §6.1): server state, then the
		// per-client host record, then the token manager.
		LockOrder: []string{
			"decorum/internal/server.Server.mu",
			"decorum/internal/server.clientHost.mu",
			"decorum/internal/token.Manager.mu",
			// Storage stack: a shard lock may be held while flushing the
			// log (the WAL rule in destage), so shard.mu ranks above the
			// log mutex; wal never calls back into buffer.
			"decorum/internal/buffer.shard.mu",
			"decorum/internal/wal.Log.mu",
			// Client data path (§6.1, §6.2): the whole-operation lock,
			// then the vnode table, then the per-association connection
			// state (recovery flips it while the table is walked), then
			// the vnode field lock, then the single-flight fetch table,
			// which is a leaf — never held together with lmu or across
			// an RPC.
			"decorum/internal/client.cvnode.hmu",
			"decorum/internal/client.Client.mu",
			"decorum/internal/client.serverConn.mu",
			"decorum/internal/client.cvnode.lmu",
			"decorum/internal/client.fetchTable.mu",
		},
	}
}

// Run loads the packages in dirs (plus dependencies) and runs every
// analyzer over the packages in dirs. Diagnostics come back sorted by
// position with suppression directives already applied.
func Run(cfg *Config, startDir string, dirs []string) ([]Diagnostic, error) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	loader, err := NewLoader(startDir)
	if err != nil {
		return nil, err
	}
	var targets []*Package
	for _, dir := range dirs {
		p, err := loader.Load(dir)
		if err != nil {
			return nil, err
		}
		targets = append(targets, p)
	}
	return RunPackages(cfg, loader, targets), nil
}

// RunPackages analyzes already-loaded packages. Annotations are collected
// over every loaded package, dependencies included: a target package may
// access exported guarded fields of a dependency.
func RunPackages(cfg *Config, loader *Loader, targets []*Package) []Diagnostic {
	ann, diags := collectAnnotations(loader, cfg)
	seen := make(map[string]bool)
	for _, p := range targets {
		if seen[p.ImportPath] {
			continue
		}
		seen[p.ImportPath] = true
		var pkgDiags []Diagnostic
		pkgDiags = append(pkgDiags, runWALDiscipline(loader, p, cfg)...)
		pkgDiags = append(pkgDiags, runLockcheck(loader, p, ann)...)
		pkgDiags = append(pkgDiags, runErrcheckIO(loader, p, cfg)...)
		ig, igDiags := collectIgnores(loader, p)
		pkgDiags = append(pkgDiags, igDiags...)
		diags = append(diags, ig.apply(pkgDiags)...)
	}
	sortDiagnostics(diags)
	return dedup(diags)
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

func dedup(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	var last Diagnostic
	for i, d := range diags {
		if i > 0 && d == last {
			continue
		}
		out = append(out, d)
		last = d
	}
	return out
}

// diag builds a Diagnostic at pos.
func mkdiag(fset *token.FileSet, analyzer string, pos token.Pos, format string, args ...any) Diagnostic {
	p := fset.Position(pos)
	return Diagnostic{
		Analyzer: analyzer,
		Pos:      p,
		File:     p.Filename,
		Line:     p.Line,
		Col:      p.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

// ignoreIndex records suppression directives for one package.
type ignoreIndex struct {
	// fileIgnores maps filename -> analyzers suppressed for the file.
	fileIgnores map[string]map[string]bool
	// lineIgnores maps filename -> line -> analyzers suppressed at that
	// line and the next.
	lineIgnores map[string]map[int]map[string]bool
}

// collectIgnores scans a package's comments for lint directives. Malformed
// directives (no reason given) are themselves diagnostics: an unexplained
// suppression is how invariant rot starts.
func collectIgnores(loader *Loader, p *Package) (*ignoreIndex, []Diagnostic) {
	idx := &ignoreIndex{
		fileIgnores: make(map[string]map[string]bool),
		lineIgnores: make(map[string]map[int]map[string]bool),
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				rest, isLine := strings.CutPrefix(text, "lint:ignore ")
				restF, isFile := strings.CutPrefix(text, "lint:file-ignore ")
				if !isLine && !isFile {
					continue
				}
				if isFile {
					rest = restF
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					diags = append(diags, mkdiag(loader.Fset, AnalyzerDirective, c.Pos(),
						"malformed lint directive: want //lint:%s <analyzer> <reason>",
						map[bool]string{true: "file-ignore", false: "ignore"}[isFile]))
					continue
				}
				pos := loader.Fset.Position(c.Pos())
				names := strings.Split(fields[0], ",")
				if isFile {
					m := idx.fileIgnores[pos.Filename]
					if m == nil {
						m = make(map[string]bool)
						idx.fileIgnores[pos.Filename] = m
					}
					for _, n := range names {
						m[n] = true
					}
					continue
				}
				lm := idx.lineIgnores[pos.Filename]
				if lm == nil {
					lm = make(map[int]map[string]bool)
					idx.lineIgnores[pos.Filename] = lm
				}
				am := lm[pos.Line]
				if am == nil {
					am = make(map[string]bool)
					lm[pos.Line] = am
				}
				for _, n := range names {
					am[n] = true
				}
			}
		}
	}
	return idx, diags
}

// apply filters out suppressed diagnostics.
func (ig *ignoreIndex) apply(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if ig.suppressed(d) {
			continue
		}
		out = append(out, d)
	}
	return out
}

func (ig *ignoreIndex) suppressed(d Diagnostic) bool {
	if d.Analyzer == AnalyzerDirective {
		return false
	}
	if m, ok := ig.fileIgnores[d.File]; ok && (m[d.Analyzer] || m["*"]) {
		return true
	}
	lm, ok := ig.lineIgnores[d.File]
	if !ok {
		return false
	}
	// A directive suppresses its own line (trailing comment) and the line
	// directly below it (comment on its own line).
	for _, line := range []int{d.Line, d.Line - 1} {
		if am, ok := lm[line]; ok && (am[d.Analyzer] || am["*"]) {
			return true
		}
	}
	return false
}
