package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockcheck verifies "guarded by" field annotations: every access to an
// annotated field must be dominated by a Lock/RLock of the named mutex
// with no intervening Unlock. The checker is flow-sensitive and, through
// function summaries (see summary.go), interprocedural: a call site
// applies its callee's inferred lock effects — mutexes required on
// entry, acquired, released, or touched anywhere below the call — so
// helpers like the client's llock/lunlock need no directives. Three
// escape hatches keep the intra-procedural core honest without alias
// analysis:
//
//   - functions whose name ends in "Locked" are assumed to run with their
//     receiver's locks held (the repo's pre-existing convention); their
//     inferred requirements are still enforced at call sites;
//   - //lint:holds, //lint:locks, //lint:rlocks, //lint:unlocks function
//     directives override inference where a helper's effect is
//     deliberate rather than structural;
//   - fields of values freshly built from a composite literal in the same
//     function are exempt — a *Buf nobody else can see yet needs no latch.
//
// It reports double acquisition of the same mutex (directly or through a
// callee), violations of the configured lock hierarchy (Config.LockOrder,
// enforced against everything a callee transitively locks), goroutines
// spawned on functions that assume locks held, and whole-program
// lock-order cycles (summary.go).

type lockMode int

const (
	modeRead      lockMode = 1
	modeExclusive lockMode = 2
)

// heldInfo records how a mutex is held: the mode, and the source text of
// the receiver it was locked through ("n", "v.pool"). The receiver text
// distinguishes two instances of the same type — locking first.mu then
// second.mu is the ordered multi-vnode pattern, not a self-deadlock.
type heldInfo struct {
	mode lockMode
	recv string
}

type lockState struct {
	held map[*types.Var]heldInfo
}

func newLockState() *lockState {
	return &lockState{held: make(map[*types.Var]heldInfo)}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	return c
}

// intersectStates keeps only mutexes held (at the weaker mode) in every
// state.
func intersectStates(states []*lockState) *lockState {
	out := newLockState()
	if len(states) == 0 {
		return out
	}
	for k, v := range states[0].held {
		merged := v
		all := true
		for _, s := range states[1:] {
			hi, ok := s.held[k]
			if !ok {
				all = false
				break
			}
			if hi.mode < merged.mode {
				merged.mode = hi.mode
			}
			if hi.recv != merged.recv {
				merged.recv = ""
			}
		}
		if all {
			out.held[k] = merged
		}
	}
	return out
}

// runLockcheck checks one package against the annotations and the
// summary database, recording lock-order edges into sums as a side
// effect (which is why the driver runs it over dependency packages too,
// discarding their diagnostics).
func runLockcheck(loader *Loader, p *Package, ann *annotations, sums *summaries) []Diagnostic {
	c := &lockChecker{loader: loader, pkg: p, ann: ann}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd, sums)
		}
	}
	return c.diags
}

type lockChecker struct {
	loader *Loader
	pkg    *Package
	ann    *annotations
	diags  []Diagnostic
}

// funcCtx is the per-function analysis context. It runs in one of two
// modes: check mode (sum == nil) reports diagnostics and records graph
// edges; summary mode (sum != nil) is quiet and records the facts
// summary.go folds into the function's summary.
type funcCtx struct {
	c         *lockChecker
	sums      *summaries
	assumeAll bool
	locals    map[types.Object]bool

	// receiver identity of the function under analysis: the receiver
	// ident's name and named type (nil/"" for plain functions and
	// closures). Used to propagate instance-accurate selfLocks facts and
	// to keep a wrapper type out of its own interface-merge.
	ownRecv     string
	ownRecvType *types.TypeName

	// summary-mode state
	sum         *funcSummary
	inferReq    map[*types.Var]lockMode
	selfOps     map[*types.Var]bool
	released    map[*types.Var]bool
	deferredRel map[*types.Var]bool
	exit        []*lockState
	// entryNeed records mutexes whose first own operation was an unlock:
	// the function must have held them on entry. entrySeed carries those
	// needs into the seeded second interpretation pass, where they count
	// as requires rather than acquires/releases.
	entryNeed map[*types.Var]lockMode
	entrySeed map[*types.Var]lockMode

	// check-mode state
	recordEdges bool
}

func (c *lockChecker) checkFunc(fd *ast.FuncDecl, sums *summaries) {
	fc := &funcCtx{
		c:           c,
		sums:        sums,
		assumeAll:   strings.HasSuffix(fd.Name.Name, "Locked"),
		locals:      make(map[types.Object]bool),
		deferredRel: make(map[*types.Var]bool),
		recordEdges: sums != nil,
	}
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		fc.ownRecv = fd.Recv.List[0].Names[0].Name
	}
	fc.collectLocals(fd.Body)
	st := newLockState()
	if fn, ok := c.pkg.Info.Defs[fd.Name].(*types.Func); ok {
		fc.ownRecvType = recvTypeName(fn)
		for _, g := range c.ann.funcHolds[fn] {
			st.held[g.mutex] = heldInfo{mode: modeExclusive}
		}
		// A directive-less helper enters with its published inferred
		// requirements held: its accesses were already charged to the
		// call sites.
		if sums != nil && !sums.hasDirectives(fn) {
			if sum := sums.funcs[fn]; sum != nil && sum.publish {
				for mv, m := range sum.requires {
					st.held[mv] = heldInfo{mode: m}
				}
			}
		}
	}
	fc.stmt(fd.Body, st)
}

// collectLocals records variables initialized from composite literals:
// values not yet visible to other goroutines.
func (fc *funcCtx) collectLocals(body *ast.BlockStmt) {
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || !isCompositeAlloc(rhs) {
			return
		}
		if obj := fc.c.pkg.Info.Defs[id]; obj != nil {
			fc.locals[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
}

func isCompositeAlloc(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := e.X.(*ast.CompositeLit)
			return ok
		}
	}
	return false
}

// --- statement interpretation ---

// stmt processes s, mutating st, and reports whether control definitely
// does not continue past s (return, panic, break, ...).
func (fc *funcCtx) stmt(s ast.Stmt, st *lockState) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		for _, sub := range s.List {
			if fc.stmt(sub, st) {
				return true
			}
		}
		return false
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && fc.isPanic(call) {
			for _, a := range call.Args {
				fc.expr(a, st)
			}
			return true
		}
		fc.expr(s.X, st)
		return false
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			fc.expr(r, st)
		}
		for _, l := range s.Lhs {
			fc.writeTarget(l, st)
		}
		return false
	case *ast.IncDecStmt:
		fc.writeTarget(s.X, st)
		return false
	case *ast.DeferStmt:
		fc.deferCall(s.Call, st)
		return false
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			fc.expr(a, st)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			fc.analyzeLit(fl)
		} else {
			fc.expr(s.Call.Fun, st)
			// Locks do not transfer to a goroutine: spawning a function
			// that assumes one held is a data race at best.
			if fn := fc.callee(s.Call); fn != nil && fc.sum == nil && !fc.assumeAll && fc.sums != nil {
				for mv := range fc.sums.effectsOf(fn).requires {
					fc.report(s.Pos(), "go %s: %s must be held on entry, but locks do not transfer to a new goroutine",
						fn.Name(), fc.mutexName(mv))
				}
			}
		}
		return false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			fc.expr(r, st)
		}
		if fc.sum != nil {
			fc.exit = append(fc.exit, st.clone())
		}
		return true
	case *ast.BranchStmt:
		return s.Tok != token.FALLTHROUGH
	case *ast.IfStmt:
		fc.stmt(s.Init, st)
		fc.expr(s.Cond, st)
		bodySt := st.clone()
		bt := fc.stmt(s.Body, bodySt)
		elseSt := st.clone()
		et := false
		if s.Else != nil {
			et = fc.stmt(s.Else, elseSt)
		}
		switch {
		case bt && et:
			return true
		case bt:
			*st = *elseSt
		case et:
			*st = *bodySt
		default:
			*st = *intersectStates([]*lockState{bodySt, elseSt})
		}
		return false
	case *ast.ForStmt:
		fc.stmt(s.Init, st)
		if s.Cond != nil {
			fc.expr(s.Cond, st)
		}
		bodySt := st.clone()
		fc.stmt(s.Body, bodySt)
		fc.stmt(s.Post, bodySt)
		*st = *intersectStates([]*lockState{st, bodySt})
		return false
	case *ast.RangeStmt:
		fc.expr(s.X, st)
		bodySt := st.clone()
		fc.stmt(s.Body, bodySt)
		*st = *intersectStates([]*lockState{st, bodySt})
		return false
	case *ast.SwitchStmt:
		fc.stmt(s.Init, st)
		if s.Tag != nil {
			fc.expr(s.Tag, st)
		}
		return fc.clauses(s.Body, st, true)
	case *ast.TypeSwitchStmt:
		fc.stmt(s.Init, st)
		fc.stmt(s.Assign, st)
		return fc.clauses(s.Body, st, true)
	case *ast.SelectStmt:
		return fc.clauses(s.Body, st, false)
	case *ast.LabeledStmt:
		return fc.stmt(s.Stmt, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						fc.expr(v, st)
					}
				}
			}
		}
		return false
	case *ast.SendStmt:
		fc.expr(s.Chan, st)
		fc.expr(s.Value, st)
		return false
	default:
		return false
	}
}

// clauses handles switch/select bodies. switchLike adds the implicit
// no-case-matched path when there is no default clause; select has no such
// path (it blocks until one clause runs).
func (fc *funcCtx) clauses(body *ast.BlockStmt, st *lockState, switchLike bool) bool {
	var states []*lockState
	hasDefault := false
	nClauses := 0
	for _, cl := range body.List {
		nClauses++
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				fc.expr(e, st)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			stmts = cl.Body
			cs := st.clone()
			fc.stmt(cl.Comm, cs)
			term := false
			for _, sub := range stmts {
				if fc.stmt(sub, cs) {
					term = true
					break
				}
			}
			if !term {
				states = append(states, cs)
			}
			continue
		}
		cs := st.clone()
		term := false
		for _, sub := range stmts {
			if fc.stmt(sub, cs) {
				term = true
				break
			}
		}
		if !term {
			states = append(states, cs)
		}
	}
	if switchLike && !hasDefault {
		states = append(states, st.clone())
	}
	if len(states) == 0 && nClauses > 0 {
		return true
	}
	*st = *intersectStates(states)
	return false
}

// --- expression walking ---

func (fc *funcCtx) expr(e ast.Expr, st *lockState) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.CallExpr:
		fc.call(e, st)
	case *ast.SelectorExpr:
		fc.expr(e.X, st)
		fc.access(e, st, false)
	case *ast.FuncLit:
		// A closure's execution context is unknown; analyze it with no
		// locks held.
		fc.analyzeLit(e)
	case *ast.ParenExpr:
		fc.expr(e.X, st)
	case *ast.StarExpr:
		fc.expr(e.X, st)
	case *ast.UnaryExpr:
		fc.expr(e.X, st)
	case *ast.BinaryExpr:
		fc.expr(e.X, st)
		fc.expr(e.Y, st)
	case *ast.IndexExpr:
		fc.expr(e.X, st)
		fc.expr(e.Index, st)
	case *ast.SliceExpr:
		fc.expr(e.X, st)
		fc.expr(e.Low, st)
		fc.expr(e.High, st)
		fc.expr(e.Max, st)
	case *ast.TypeAssertExpr:
		fc.expr(e.X, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			fc.expr(el, st)
		}
	case *ast.KeyValueExpr:
		fc.expr(e.Key, st)
		fc.expr(e.Value, st)
	}
}

// analyzeLit checks a non-inline closure body with an empty lock state.
// Summary mode skips it: a closure's effects don't escape through the
// enclosing function's summary, and check mode reports its body anyway.
func (fc *funcCtx) analyzeLit(fl *ast.FuncLit) {
	if fc.sum == nil {
		fc.stmt(fl.Body, newLockState())
	}
}

// writeTarget processes an assignment target: annotated fields anywhere in
// the selector chain count as writes.
func (fc *funcCtx) writeTarget(e ast.Expr, st *lockState) {
	switch e := e.(type) {
	case *ast.Ident:
		return // plain variable
	case *ast.SelectorExpr:
		fc.access(e, st, true)
		fc.writeTarget(e.X, st)
	case *ast.IndexExpr:
		fc.expr(e.Index, st)
		fc.writeTarget(e.X, st)
	case *ast.StarExpr:
		fc.writeTarget(e.X, st)
	case *ast.ParenExpr:
		fc.writeTarget(e.X, st)
	default:
		fc.expr(e, st)
	}
}

// call interprets one call: mutex operations change the lock state
// directly; calls to known functions apply their summarized (or
// directive-declared) effects.
func (fc *funcCtx) call(call *ast.CallExpr, st *lockState) {
	if mv, op, recv, ok := fc.lockOp(call); ok {
		if mv != nil {
			fc.applyLockOp(mv, op, recv, call.Pos(), st)
		}
		return
	}
	// Immediately invoked function literal: runs here, under these locks.
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		for _, a := range call.Args {
			fc.expr(a, st)
		}
		fc.stmt(fl.Body, st)
		return
	}
	for _, a := range call.Args {
		fc.expr(a, st)
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		fc.expr(sel.X, st)
	}
	fn := fc.callee(call)
	if fn == nil {
		return
	}
	recv, localRecv := fc.callReceiver(call)
	eff := fc.effectsOfFor(fn)
	iface := isInterfaceMethod(fn)

	// Requires: the callee assumes these held. A fresh local receiver is
	// exempt — nobody else can lock it yet.
	if !fc.assumeAll && !localRecv {
		for mv, need := range eff.requires {
			if st.held[mv].mode >= need {
				continue
			}
			if fc.sum != nil {
				if fc.inferReq[mv] < need {
					fc.inferReq[mv] = need
				}
				continue
			}
			fc.report(call.Pos(), "call to %s requires holding %s", fn.Name(), fc.mutexName(mv))
		}
	}

	// Self-locks are instance-accurate: calling a method that locks its
	// own receiver's mutex while this caller holds that mutex on the same
	// receiver is a self-deadlock.
	if !localRecv && !fc.assumeAll {
		for mv := range eff.selfLocks {
			// A callee that releases the mutex first, or requires it held
			// on entry (it drops and retakes it itself), cannot deadlock
			// against a caller who holds it.
			if eff.releases[mv] || eff.requires[mv] != 0 {
				continue
			}
			if prev, ok := st.held[mv]; ok && prev.recv != "" && prev.recv == recv {
				fc.report(call.Pos(), "call to %s acquires %s while the caller already holds it (deadlock)",
					fn.Name(), fc.mutexName(mv))
			}
		}
	}

	// Touches: everything the callee can lock below this point through
	// concretely resolved calls. Checked against the configured
	// hierarchy; mutexes the callee releases first are exempt. Interface
	// calls contribute no lock-order edges — a merged touch set unions
	// instance-disjoint implementations, and edges from it manufacture
	// cycles that no execution can take (those touches ride in
	// eff.ifaceTouches and only keep the summary monotone).
	for mv := range eff.touches {
		if eff.releases[mv] {
			continue
		}
		if fc.sum != nil {
			fc.sum.touches[mv] = true
		}
		if r, ranked := fc.c.ann.ranks[mv]; ranked {
			for hm := range st.held {
				if hm == mv || eff.releases[hm] {
					continue
				}
				if hr, ok := fc.c.ann.ranks[hm]; ok && hr > r {
					fc.report(call.Pos(), "lock hierarchy violation: acquiring %s while holding %s (documented order: %s)",
						fc.mutexName(mv), fc.mutexName(hm), strings.Join(fc.c.ann.rankNames, " < "))
				}
			}
		}
		if fc.recordEdges && !iface {
			for hm := range st.held {
				if !eff.releases[hm] {
					fc.sums.recordEdge(fc.sums.mutexNode(hm), fc.sums.mutexNode(mv), call.Pos())
				}
			}
		}
	}
	if fc.sum != nil {
		for mv := range eff.ifaceTouches {
			if !eff.releases[mv] {
				fc.sum.ifaceTouches[mv] = true
			}
		}
	}

	// Same-receiver helper chains keep selfLocks instance-accurate: a
	// method calling v.llock() self-locks whatever llock does.
	if fc.sum != nil && fc.ownRecv != "" && recv == fc.ownRecv {
		for mv := range eff.selfLocks {
			if !eff.releases[mv] {
				fc.sum.selfLocks[mv] = true
			}
		}
		for mv := range eff.acquires {
			fc.sum.selfLocks[mv] = true
		}
	}

	// RPC edges: holding a mutex across an RPC links it to the methods
	// the call (transitively) issues; the handler side of the graph is
	// attached in summary.go. Direct interface calls are skipped for the
	// same reason as touches above — the merged RPC facts union
	// instance-disjoint implementations. Facts that an implementation
	// contributed to a concrete caller's summary (the token manager's
	// revoke path reaching cb.Revoke through token.Host) still make
	// edges at that concrete call site.
	if fc.recordEdges && !iface {
		var rpcNodes []string
		if fc.sums.peerCalls[fn.FullName()] {
			if m := constStringArg(fc.c.pkg, call, 0); m != "" {
				rpcNodes = append(rpcNodes, "r:"+m)
			} else {
				rpcNodes = append(rpcNodes, "r:*")
			}
		}
		if eff.rpcAll {
			rpcNodes = append(rpcNodes, "r:*")
		}
		for m := range eff.rpcMethods {
			rpcNodes = append(rpcNodes, "r:"+m)
		}
		for hm := range st.held {
			if eff.releases[hm] {
				continue
			}
			for _, rn := range rpcNodes {
				fc.sums.recordEdge(fc.sums.mutexNode(hm), rn, call.Pos())
			}
		}
	}

	// Apply the callee's net effect on the caller's state: releases
	// first (release-then-retake helpers), then acquisitions.
	for mv := range eff.releases {
		if _, ok := st.held[mv]; ok {
			delete(st.held, mv)
		} else if fc.released != nil {
			fc.released[mv] = true
		}
	}
	for mv, m := range eff.acquires {
		st.held[mv] = heldInfo{mode: m, recv: recv}
	}
}

// callReceiver extracts the receiver text for instance discrimination: a
// method's receiver expression, or a plain function's first argument.
func (fc *funcCtx) callReceiver(call *ast.CallExpr) (recv string, local bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X), fc.isLocalBase(sel.X)
	}
	if len(call.Args) > 0 {
		switch call.Args[0].(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.UnaryExpr:
			return types.ExprString(call.Args[0]), fc.isLocalBase(call.Args[0])
		}
	}
	return "", false
}

// effectsOfFor is effectsOf with this function's receiver type excluded
// from interface-implementation merges.
func (fc *funcCtx) effectsOfFor(fn *types.Func) lockEffects {
	if fc.sums == nil {
		return fc.effectsOf(fn)
	}
	return fc.sums.effectsOfExcluding(fn, fc.ownRecvType)
}

func (fc *funcCtx) effectsOf(fn *types.Func) lockEffects {
	if fc.sums == nil {
		// Summary-less fallback: directives only.
		eff := lockEffects{
			requires:   make(map[*types.Var]lockMode),
			acquires:   make(map[*types.Var]lockMode),
			releases:   make(map[*types.Var]bool),
			touches:    make(map[*types.Var]bool),
			rpcMethods: make(map[string]bool),
		}
		for _, g := range fc.c.ann.funcHolds[fn] {
			eff.requires[g.mutex] = modeExclusive
		}
		for _, g := range fc.c.ann.funcLocks[fn] {
			eff.acquires[g.mutex] = modeExclusive
			eff.touches[g.mutex] = true
		}
		for _, g := range fc.c.ann.funcRLocks[fn] {
			eff.acquires[g.mutex] = modeRead
			eff.touches[g.mutex] = true
		}
		for _, g := range fc.c.ann.funcUnlocks[fn] {
			eff.releases[g.mutex] = true
		}
		return eff
	}
	return fc.sums.effectsOf(fn)
}

// deferCall handles `defer f(...)`. A deferred Unlock keeps the mutex held
// through the rest of the function (summary mode records it so the net
// acquisition set subtracts it); a deferred closure runs at return time in
// an unknown lock context.
func (fc *funcCtx) deferCall(call *ast.CallExpr, st *lockState) {
	if mv, op, _, ok := fc.lockOp(call); ok {
		if mv != nil && (op == "Unlock" || op == "RUnlock") && fc.deferredRel != nil {
			fc.deferredRel[mv] = true
		}
		return
	}
	if fn := fc.callee(call); fn != nil {
		eff := fc.effectsOf(fn)
		if len(eff.acquires)+len(eff.releases)+len(eff.touches) > 0 {
			if fc.deferredRel != nil {
				for mv := range eff.releases {
					fc.deferredRel[mv] = true
				}
			}
			return
		}
	}
	for _, a := range call.Args {
		fc.expr(a, st)
	}
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		fc.analyzeLit(fl)
	}
}

// lockOp recognizes m.mu.Lock()-style calls. ok reports that the call is a
// sync mutex operation; mv is nil when the mutex is not a resolvable
// struct field (e.g. a local mutex variable), in which case the call is
// ignored.
func (fc *funcCtx) lockOp(call *ast.CallExpr) (mv *types.Var, op, recv string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return nil, "", "", false
	}
	fn, isFn := fc.c.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", "", false
	}
	// Resolve the receiver to a struct field: X is `recv.path.mu`.
	if inner, isSel := sel.X.(*ast.SelectorExpr); isSel {
		if v, isVar := fc.c.pkg.Info.Uses[inner.Sel].(*types.Var); isVar && v.IsField() {
			return v, sel.Sel.Name, types.ExprString(inner.X), true
		}
	}
	return nil, sel.Sel.Name, "", true
}

// applyLockOp updates held state for a direct mutex operation and reports
// double-locking and hierarchy violations.
func (fc *funcCtx) applyLockOp(mv *types.Var, op, recv string, pos token.Pos, st *lockState) {
	ann := fc.c.ann
	name := fc.mutexName(mv)
	// Record how this function first touches the mutex itself: an
	// acquire (or try-acquire) first means it manages the lock, no entry
	// requirement; an unlock first means it demands the lock held on
	// entry even if it later re-acquires it (the group-commit leader
	// pattern).
	firstOp := false
	if fc.selfOps != nil {
		if _, seen := fc.selfOps[mv]; !seen {
			firstOp = true
			fc.selfOps[mv] = op != "Unlock" && op != "RUnlock"
		}
	}
	switch op {
	case "Unlock", "RUnlock":
		if _, ok := st.held[mv]; !ok {
			if fc.released != nil {
				fc.released[mv] = true
			}
			if firstOp && fc.entryNeed != nil {
				need := modeExclusive
				if op == "RUnlock" {
					need = modeRead
				}
				fc.entryNeed[mv] = need
			}
		}
		delete(st.held, mv)
		return
	case "TryLock", "TryRLock":
		// The result is checked by the caller; treat as not acquired on
		// the fall-through path (conservative), and exclude it from the
		// deadlock graph — a try-lock never blocks.
		return
	}
	if fc.sum != nil {
		fc.sum.touches[mv] = true
		if fc.ownRecv != "" && recv == fc.ownRecv {
			fc.sum.selfLocks[mv] = true
		}
	}
	// Same mutex field through the same receiver expression: self-deadlock.
	// A different receiver (first.mu then second.mu) is instance-ordered
	// locking and legal.
	if prev, already := st.held[mv]; already && prev.recv != "" && prev.recv == recv {
		fc.report(pos, "%s acquired while already held (deadlock)", name)
	}
	if r, ranked := ann.ranks[mv]; ranked {
		for hm := range st.held {
			if hr, ok := ann.ranks[hm]; ok && hr > r {
				fc.report(pos, "lock hierarchy violation: acquiring %s while holding %s (documented order: %s)",
					name, fc.mutexName(hm), strings.Join(ann.rankNames, " < "))
			}
		}
	}
	if fc.recordEdges {
		for hm := range st.held {
			fc.sums.recordEdge(fc.sums.mutexNode(hm), fc.sums.mutexNode(mv), pos)
		}
	}
	mode := modeExclusive
	if op == "RLock" {
		mode = modeRead
	}
	st.held[mv] = heldInfo{mode: mode, recv: recv}
}

// access checks one selector against the guard annotations.
func (fc *funcCtx) access(sel *ast.SelectorExpr, st *lockState, isWrite bool) {
	fv, isVar := fc.c.pkg.Info.Uses[sel.Sel].(*types.Var)
	if !isVar {
		return
	}
	g := fc.c.ann.fieldGuards[fv]
	if g == nil {
		return
	}
	if fc.isLocalBase(sel.X) {
		return
	}
	mode := st.held[g.mutex].mode
	if mode == modeExclusive || (!isWrite && mode == modeRead) {
		return
	}
	if fc.sum != nil {
		// Summary mode: an unprotected access becomes an entry
		// requirement candidate instead of a report.
		need := modeRead
		if isWrite {
			need = modeExclusive
		}
		if fc.inferReq[g.mutex] < need {
			fc.inferReq[g.mutex] = need
		}
		return
	}
	if fc.assumeAll {
		return
	}
	if mode == modeRead && isWrite {
		fc.report(sel.Sel.Pos(), "write to %s (guarded by %s) while holding only the read lock", sel.Sel.Name, g.name)
		return
	}
	verb := "read of"
	if isWrite {
		verb = "write to"
	}
	fc.report(sel.Sel.Pos(), "%s %s (guarded by %s) without holding %s", verb, sel.Sel.Name, g.name, g.name)
}

// isLocalBase reports whether the access base is a freshly allocated local
// value.
func (fc *funcCtx) isLocalBase(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := fc.c.pkg.Info.Uses[x]
			if obj == nil {
				obj = fc.c.pkg.Info.Defs[x]
			}
			return obj != nil && fc.locals[obj]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return false
		}
	}
}

func (fc *funcCtx) callee(call *ast.CallExpr) *types.Func {
	return calleeOf(fc.c.pkg, call)
}

func (fc *funcCtx) isPanic(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := fc.c.pkg.Info.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "panic"
}

// mutexName prefers the hierarchy display name, then the summary
// database's Type.field form, falling back to the bare field name.
func (fc *funcCtx) mutexName(mv *types.Var) string {
	if n, ok := fc.c.ann.guardNames[mv]; ok {
		return n
	}
	if fc.sums != nil {
		if d, ok := fc.sums.mutexDisp[mv]; ok {
			return d
		}
	}
	return mv.Name()
}

// report appends a diagnostic; summary mode is silent (the check pass
// reports the same facts at better positions).
func (fc *funcCtx) report(pos token.Pos, format string, args ...any) {
	if fc.sum != nil {
		return
	}
	fc.c.diags = append(fc.c.diags, mkdiag(fc.c.loader.Fset, AnalyzerLock, pos, format, args...))
}
