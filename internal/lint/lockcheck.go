package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockcheck verifies "guarded by" field annotations: every access to an
// annotated field must be dominated by a Lock/RLock of the named mutex
// with no intervening Unlock. The checker is flow-sensitive and
// intra-procedural: it walks each function body in execution order,
// tracking which mutexes are held, merging branches conservatively
// (a mutex counts as held after an if/for/switch only if every
// fall-through path holds it). Three escape hatches keep it honest
// without alias analysis:
//
//   - functions whose name ends in "Locked" are assumed to run with their
//     receiver's locks held (the repo's pre-existing convention);
//   - //lint:holds, //lint:locks, //lint:rlocks, //lint:unlocks function
//     directives describe helpers like the client's llock/lunlock;
//   - fields of values freshly built from a composite literal in the same
//     function are exempt — a *Buf nobody else can see yet needs no latch.
//
// It also reports double acquisition of the same mutex and violations of
// the configured lock hierarchy (Config.LockOrder).

type lockMode int

const (
	modeRead      lockMode = 1
	modeExclusive lockMode = 2
)

// heldInfo records how a mutex is held: the mode, and the source text of
// the receiver it was locked through ("n", "v.pool"). The receiver text
// distinguishes two instances of the same type — locking first.mu then
// second.mu is the ordered multi-vnode pattern, not a self-deadlock.
type heldInfo struct {
	mode lockMode
	recv string
}

type lockState struct {
	held map[*types.Var]heldInfo
}

func newLockState() *lockState {
	return &lockState{held: make(map[*types.Var]heldInfo)}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	return c
}

// intersectStates keeps only mutexes held (at the weaker mode) in every
// state.
func intersectStates(states []*lockState) *lockState {
	out := newLockState()
	if len(states) == 0 {
		return out
	}
	for k, v := range states[0].held {
		merged := v
		all := true
		for _, s := range states[1:] {
			hi, ok := s.held[k]
			if !ok {
				all = false
				break
			}
			if hi.mode < merged.mode {
				merged.mode = hi.mode
			}
			if hi.recv != merged.recv {
				merged.recv = ""
			}
		}
		if all {
			out.held[k] = merged
		}
	}
	return out
}

func runLockcheck(loader *Loader, p *Package, ann *annotations) []Diagnostic {
	c := &lockChecker{loader: loader, pkg: p, ann: ann}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return c.diags
}

type lockChecker struct {
	loader *Loader
	pkg    *Package
	ann    *annotations
	diags  []Diagnostic
}

// funcCtx is the per-function analysis context.
type funcCtx struct {
	c         *lockChecker
	assumeAll bool
	locals    map[types.Object]bool
}

func (c *lockChecker) checkFunc(fd *ast.FuncDecl) {
	fc := &funcCtx{
		c:         c,
		assumeAll: strings.HasSuffix(fd.Name.Name, "Locked"),
		locals:    make(map[types.Object]bool),
	}
	fc.collectLocals(fd.Body)
	st := newLockState()
	if fn, ok := c.pkg.Info.Defs[fd.Name].(*types.Func); ok {
		for _, g := range c.ann.funcHolds[fn] {
			st.held[g.mutex] = heldInfo{mode: modeExclusive}
		}
	}
	fc.stmt(fd.Body, st)
}

// collectLocals records variables initialized from composite literals:
// values not yet visible to other goroutines.
func (fc *funcCtx) collectLocals(body *ast.BlockStmt) {
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || !isCompositeAlloc(rhs) {
			return
		}
		if obj := fc.c.pkg.Info.Defs[id]; obj != nil {
			fc.locals[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
}

func isCompositeAlloc(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := e.X.(*ast.CompositeLit)
			return ok
		}
	}
	return false
}

// --- statement interpretation ---

// stmt processes s, mutating st, and reports whether control definitely
// does not continue past s (return, panic, break, ...).
func (fc *funcCtx) stmt(s ast.Stmt, st *lockState) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		for _, sub := range s.List {
			if fc.stmt(sub, st) {
				return true
			}
		}
		return false
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && fc.isPanic(call) {
			for _, a := range call.Args {
				fc.expr(a, st)
			}
			return true
		}
		fc.expr(s.X, st)
		return false
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			fc.expr(r, st)
		}
		for _, l := range s.Lhs {
			fc.writeTarget(l, st)
		}
		return false
	case *ast.IncDecStmt:
		fc.writeTarget(s.X, st)
		return false
	case *ast.DeferStmt:
		fc.deferCall(s.Call, st)
		return false
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			fc.expr(a, st)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			fc.stmt(fl.Body, newLockState())
		} else {
			fc.expr(s.Call.Fun, st)
		}
		return false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			fc.expr(r, st)
		}
		return true
	case *ast.BranchStmt:
		return s.Tok != token.FALLTHROUGH
	case *ast.IfStmt:
		fc.stmt(s.Init, st)
		fc.expr(s.Cond, st)
		bodySt := st.clone()
		bt := fc.stmt(s.Body, bodySt)
		elseSt := st.clone()
		et := false
		if s.Else != nil {
			et = fc.stmt(s.Else, elseSt)
		}
		switch {
		case bt && et:
			return true
		case bt:
			*st = *elseSt
		case et:
			*st = *bodySt
		default:
			*st = *intersectStates([]*lockState{bodySt, elseSt})
		}
		return false
	case *ast.ForStmt:
		fc.stmt(s.Init, st)
		if s.Cond != nil {
			fc.expr(s.Cond, st)
		}
		bodySt := st.clone()
		fc.stmt(s.Body, bodySt)
		fc.stmt(s.Post, bodySt)
		*st = *intersectStates([]*lockState{st, bodySt})
		return false
	case *ast.RangeStmt:
		fc.expr(s.X, st)
		bodySt := st.clone()
		fc.stmt(s.Body, bodySt)
		*st = *intersectStates([]*lockState{st, bodySt})
		return false
	case *ast.SwitchStmt:
		fc.stmt(s.Init, st)
		if s.Tag != nil {
			fc.expr(s.Tag, st)
		}
		return fc.clauses(s.Body, st, true)
	case *ast.TypeSwitchStmt:
		fc.stmt(s.Init, st)
		fc.stmt(s.Assign, st)
		return fc.clauses(s.Body, st, true)
	case *ast.SelectStmt:
		return fc.clauses(s.Body, st, false)
	case *ast.LabeledStmt:
		return fc.stmt(s.Stmt, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						fc.expr(v, st)
					}
				}
			}
		}
		return false
	case *ast.SendStmt:
		fc.expr(s.Chan, st)
		fc.expr(s.Value, st)
		return false
	default:
		return false
	}
}

// clauses handles switch/select bodies. switchLike adds the implicit
// no-case-matched path when there is no default clause; select has no such
// path (it blocks until one clause runs).
func (fc *funcCtx) clauses(body *ast.BlockStmt, st *lockState, switchLike bool) bool {
	var states []*lockState
	hasDefault := false
	nClauses := 0
	for _, cl := range body.List {
		nClauses++
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				fc.expr(e, st)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			stmts = cl.Body
			cs := st.clone()
			fc.stmt(cl.Comm, cs)
			term := false
			for _, sub := range stmts {
				if fc.stmt(sub, cs) {
					term = true
					break
				}
			}
			if !term {
				states = append(states, cs)
			}
			continue
		}
		cs := st.clone()
		term := false
		for _, sub := range stmts {
			if fc.stmt(sub, cs) {
				term = true
				break
			}
		}
		if !term {
			states = append(states, cs)
		}
	}
	if switchLike && !hasDefault {
		states = append(states, st.clone())
	}
	if len(states) == 0 && nClauses > 0 {
		return true
	}
	*st = *intersectStates(states)
	return false
}

// --- expression walking ---

func (fc *funcCtx) expr(e ast.Expr, st *lockState) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.CallExpr:
		fc.call(e, st)
	case *ast.SelectorExpr:
		fc.expr(e.X, st)
		fc.access(e, st, false)
	case *ast.FuncLit:
		// A closure's execution context is unknown; analyze it with no
		// locks held.
		fc.stmt(e.Body, newLockState())
	case *ast.ParenExpr:
		fc.expr(e.X, st)
	case *ast.StarExpr:
		fc.expr(e.X, st)
	case *ast.UnaryExpr:
		fc.expr(e.X, st)
	case *ast.BinaryExpr:
		fc.expr(e.X, st)
		fc.expr(e.Y, st)
	case *ast.IndexExpr:
		fc.expr(e.X, st)
		fc.expr(e.Index, st)
	case *ast.SliceExpr:
		fc.expr(e.X, st)
		fc.expr(e.Low, st)
		fc.expr(e.High, st)
		fc.expr(e.Max, st)
	case *ast.TypeAssertExpr:
		fc.expr(e.X, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			fc.expr(el, st)
		}
	case *ast.KeyValueExpr:
		fc.expr(e.Key, st)
		fc.expr(e.Value, st)
	}
}

// writeTarget processes an assignment target: annotated fields anywhere in
// the selector chain count as writes.
func (fc *funcCtx) writeTarget(e ast.Expr, st *lockState) {
	switch e := e.(type) {
	case *ast.Ident:
		return // plain variable
	case *ast.SelectorExpr:
		fc.access(e, st, true)
		fc.writeTarget(e.X, st)
	case *ast.IndexExpr:
		fc.expr(e.Index, st)
		fc.writeTarget(e.X, st)
	case *ast.StarExpr:
		fc.writeTarget(e.X, st)
	case *ast.ParenExpr:
		fc.writeTarget(e.X, st)
	default:
		fc.expr(e, st)
	}
}

// call interprets one call: mutex operations and annotated helpers change
// the lock state, everything else is walked for accesses.
func (fc *funcCtx) call(call *ast.CallExpr, st *lockState) {
	if mv, op, recv, ok := fc.lockOp(call); ok {
		if mv != nil {
			fc.applyLockOp(mv, op, recv, call.Pos(), st)
		}
		return
	}
	// Immediately invoked function literal: runs here, under these locks.
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		for _, a := range call.Args {
			fc.expr(a, st)
		}
		fc.stmt(fl.Body, st)
		return
	}
	for _, a := range call.Args {
		fc.expr(a, st)
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		fc.expr(sel.X, st)
	}
	if fn := fc.callee(call); fn != nil {
		recv := ""
		localRecv := false
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			recv = types.ExprString(sel.X)
			localRecv = fc.isLocalBase(sel.X)
		}
		ann := fc.c.ann
		// A //lint:holds callee needs its mutex held here — unless the
		// receiver is a function-local value nobody else can lock yet.
		if !fc.assumeAll && !localRecv {
			for _, g := range ann.funcHolds[fn] {
				if st.held[g.mutex].mode != modeExclusive {
					fc.report(call.Pos(), "call to %s requires holding %s", fn.Name(), g.name)
				}
			}
		}
		for _, g := range ann.funcLocks[fn] {
			fc.applyLockOp(g.mutex, "Lock", recv, call.Pos(), st)
		}
		for _, g := range ann.funcRLocks[fn] {
			fc.applyLockOp(g.mutex, "RLock", recv, call.Pos(), st)
		}
		for _, g := range ann.funcUnlocks[fn] {
			delete(st.held, g.mutex)
		}
	}
}

// deferCall handles `defer f(...)`. A deferred Unlock keeps the mutex held
// through the rest of the function, so it is a no-op for the state; a
// deferred closure runs at return time in an unknown lock context.
func (fc *funcCtx) deferCall(call *ast.CallExpr, st *lockState) {
	if _, _, _, ok := fc.lockOp(call); ok {
		return
	}
	if fn := fc.callee(call); fn != nil {
		ann := fc.c.ann
		if len(ann.funcLocks[fn]) > 0 || len(ann.funcRLocks[fn]) > 0 || len(ann.funcUnlocks[fn]) > 0 {
			return
		}
	}
	for _, a := range call.Args {
		fc.expr(a, st)
	}
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		fc.stmt(fl.Body, newLockState())
	}
}

// lockOp recognizes m.mu.Lock()-style calls. ok reports that the call is a
// sync mutex operation; mv is nil when the mutex is not a resolvable
// struct field (e.g. a local mutex variable), in which case the call is
// ignored.
func (fc *funcCtx) lockOp(call *ast.CallExpr) (mv *types.Var, op, recv string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return nil, "", "", false
	}
	fn, isFn := fc.c.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", "", false
	}
	// Resolve the receiver to a struct field: X is `recv.path.mu`.
	if inner, isSel := sel.X.(*ast.SelectorExpr); isSel {
		if v, isVar := fc.c.pkg.Info.Uses[inner.Sel].(*types.Var); isVar && v.IsField() {
			return v, sel.Sel.Name, types.ExprString(inner.X), true
		}
	}
	return nil, sel.Sel.Name, "", true
}

// applyLockOp updates held state and reports double-locking and hierarchy
// violations.
func (fc *funcCtx) applyLockOp(mv *types.Var, op, recv string, pos token.Pos, st *lockState) {
	ann := fc.c.ann
	name := fc.mutexName(mv)
	switch op {
	case "Unlock", "RUnlock":
		delete(st.held, mv)
		return
	case "TryLock", "TryRLock":
		// The result is checked by the caller; treat as not acquired on
		// the fall-through path (conservative).
		return
	}
	// Same mutex field through the same receiver expression: self-deadlock.
	// A different receiver (first.mu then second.mu) is instance-ordered
	// locking and legal.
	if prev, already := st.held[mv]; already && prev.recv != "" && prev.recv == recv {
		fc.report(pos, "%s acquired while already held (deadlock)", name)
	}
	if r, ranked := ann.ranks[mv]; ranked {
		for hm := range st.held {
			if hr, ok := ann.ranks[hm]; ok && hr > r {
				fc.report(pos, "lock hierarchy violation: acquiring %s while holding %s (documented order: %s)",
					name, fc.mutexName(hm), strings.Join(ann.rankNames, " < "))
			}
		}
	}
	mode := modeExclusive
	if op == "RLock" {
		mode = modeRead
	}
	st.held[mv] = heldInfo{mode: mode, recv: recv}
}

// access checks one selector against the guard annotations.
func (fc *funcCtx) access(sel *ast.SelectorExpr, st *lockState, isWrite bool) {
	fv, isVar := fc.c.pkg.Info.Uses[sel.Sel].(*types.Var)
	if !isVar {
		return
	}
	g := fc.c.ann.fieldGuards[fv]
	if g == nil || fc.assumeAll {
		return
	}
	if fc.isLocalBase(sel.X) {
		return
	}
	mode := st.held[g.mutex].mode
	if mode == modeExclusive || (!isWrite && mode == modeRead) {
		return
	}
	if mode == modeRead && isWrite {
		fc.report(sel.Sel.Pos(), "write to %s (guarded by %s) while holding only the read lock", sel.Sel.Name, g.name)
		return
	}
	verb := "read of"
	if isWrite {
		verb = "write to"
	}
	fc.report(sel.Sel.Pos(), "%s %s (guarded by %s) without holding %s", verb, sel.Sel.Name, g.name, g.name)
}

// isLocalBase reports whether the access base is a freshly allocated local
// value.
func (fc *funcCtx) isLocalBase(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := fc.c.pkg.Info.Uses[x]
			if obj == nil {
				obj = fc.c.pkg.Info.Defs[x]
			}
			return obj != nil && fc.locals[obj]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return false
		}
	}
}

func (fc *funcCtx) callee(call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := fc.c.pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := fc.c.pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func (fc *funcCtx) isPanic(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := fc.c.pkg.Info.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "panic"
}

// mutexName prefers the hierarchy display name, falling back to the field
// name.
func (fc *funcCtx) mutexName(mv *types.Var) string {
	if n, ok := fc.c.ann.guardNames[mv]; ok {
		return n
	}
	return mv.Name()
}

func (fc *funcCtx) report(pos token.Pos, format string, args ...any) {
	fc.c.diags = append(fc.c.diags, mkdiag(fc.c.loader.Fset, AnalyzerLock, pos, format, args...))
}
