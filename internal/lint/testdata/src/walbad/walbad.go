// Package walbad seeds waldiscipline violations for the golden test.
package walbad

import "decorum/internal/buffer"

// DirectWrite mutates the buffer through Data directly.
func DirectWrite(b *buffer.Buf) {
	b.Data()[0] = 1 // want: direct index assignment
}

// AliasWrite mutates through a local alias of the Data slice.
func AliasWrite(b *buffer.Buf) {
	d := b.Data()
	d[4] = 2 // want: write through tainted local
}

// ResliceWrite mutates through a re-slicing of the alias.
func ResliceWrite(b *buffer.Buf) {
	d := b.Data()
	sub := d[8:16]
	sub[0] = 3 // want: write through re-sliced alias
}

// CopyInto copies into the backing array.
func CopyInto(b *buffer.Buf, src []byte) {
	copy(b.Data()[8:], src) // want: copy into Data
}

// AppendTo appends to the Data slice.
func AppendTo(b *buffer.Buf) []byte {
	return append(b.Data(), 9) // want: append to Data
}

// ReadOnly only reads; no finding.
func ReadOnly(b *buffer.Buf) byte {
	d := b.Data()
	return d[0] + b.Data()[1]
}

// SanctionedCopy goes through the logging primitive; no finding.
func SanctionedCopy(b *buffer.Buf, p []byte) error {
	return b.WriteUnlogged(0, p)
}
