// Package obsbad seeds obscheck violations for the golden test:
// metric cells resolved by name on hot paths instead of at wiring time.
package obsbad

import (
	"time"

	"decorum/internal/obs"
)

type datapath struct {
	reg *obs.Registry
	ops *obs.Counter
	lat *obs.Histogram
}

// NewDatapath resolves cells at wiring time: allowed by prefix.
func NewDatapath(reg *obs.Registry) *datapath {
	return &datapath{
		reg: reg,
		ops: reg.Counter("path.ops"),
		lat: reg.Histogram("path.latency"),
	}
}

// AttachDepth is another wiring-prefixed context: allowed.
func AttachDepth(reg *obs.Registry) *obs.Gauge {
	return reg.Gauge("path.depth")
}

// BadOp looks the counter up on every operation.
func (p *datapath) BadOp() {
	p.reg.Counter("path.ops").Inc() // want: per-call lookup
}

// BadObserve looks the histogram up on every observation.
func (p *datapath) BadObserve(d time.Duration) {
	p.reg.Histogram("path.latency").Observe(d) // want: per-call lookup
}

// BadGaugeFlush resolves a gauge inside a flush loop.
func (p *datapath) BadGaugeFlush(depth int) {
	p.reg.Gauge("path.depth").Set(int64(depth)) // want: per-call lookup
}

// GoodOp bumps the handle stored at wiring time.
func (p *datapath) GoodOp() {
	p.ops.Inc()
}

// GoodObserve uses the stored histogram handle.
func (p *datapath) GoodObserve(d time.Duration) {
	p.lat.Observe(d)
}
