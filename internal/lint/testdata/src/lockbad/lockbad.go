// Package lockbad seeds lockcheck violations for the golden test.
package lockbad

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// BadWrite touches n without the lock.
func BadWrite(c *counter) {
	c.n++ // want: write without lock
}

// GoodWrite holds the lock.
func GoodWrite(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// BadAfterUnlock reads after releasing.
func BadAfterUnlock(c *counter) int {
	c.mu.Lock()
	c.n = 7
	c.mu.Unlock()
	return c.n // want: read after unlock
}

// GoodDeferred relies on defer keeping the lock to the end.
func GoodDeferred(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// GoodBranches holds the lock on every path reaching the access.
func GoodBranches(c *counter, which bool) {
	if which {
		c.mu.Lock()
	} else {
		c.mu.Lock()
	}
	c.n++
	c.mu.Unlock()
}

// BadBranch only locks on one path.
func BadBranch(c *counter, which bool) {
	if which {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	c.n++ // want: lock not held on the else path
}

// Double locks twice: self-deadlock.
func Double(c *counter) {
	c.mu.Lock()
	c.mu.Lock() // want: double lock
	c.n++
	c.mu.Unlock()
	c.mu.Unlock()
}

// GoodFresh initializes a value nobody else can see.
func GoodFresh() *counter {
	c := &counter{}
	c.n = 1
	return c
}

type rwcounter struct {
	mu sync.RWMutex
	n  int // guarded by mu
}

// GoodRead reads under the read lock.
func GoodRead(c *rwcounter) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// BadReadLockedWrite writes while holding only the read lock.
func BadReadLockedWrite(c *rwcounter) {
	c.mu.RLock()
	c.n = 2 // want: write under RLock
	c.mu.RUnlock()
}

type gate struct {
	mu sync.Mutex
	v  int // guarded by mu
}

// fill assumes the caller holds mu.
//
//lint:holds mu
func (g *gate) fill() { g.v++ }

// GoodHolds locks before calling fill.
func (g *gate) GoodHolds() {
	g.mu.Lock()
	g.fill()
	g.mu.Unlock()
}

// BadHolds calls fill without the lock.
func (g *gate) BadHolds() {
	g.fill() // want: call requires holding mu
}

// drainLocked is exempt by naming convention.
func (g *gate) drainLocked() int { return g.v }

// Outer and Inner document the hierarchy: Outer.mu before Inner.mu (the
// golden test's LockOrder names these).
type Outer struct {
	mu sync.Mutex
	a  int // guarded by mu
}

type Inner struct {
	mu sync.Mutex
	b  int // guarded by mu
}

// GoodOrder acquires outer before inner.
func GoodOrder(o *Outer, i *Inner) {
	o.mu.Lock()
	i.mu.Lock()
	o.a++
	i.b++
	i.mu.Unlock()
	o.mu.Unlock()
}

// BadOrder acquires inner before outer.
func BadOrder(o *Outer, i *Inner) {
	i.mu.Lock()
	o.mu.Lock() // want: hierarchy violation
	o.a++
	i.b++
	o.mu.Unlock()
	i.mu.Unlock()
}

// shardT mirrors the sharded buffer pool: the hot-path state hangs off a
// shard, and accesses must hold that shard's own mutex.
type shardT struct {
	mu   sync.Mutex
	bufs map[int64]int // guarded by mu
	hits int           // guarded by mu
}

type poolT struct {
	shards []*shardT
}

// GoodShard locks the shard it touches.
func GoodShard(p *poolT, n int64) int {
	s := p.shards[n%int64(len(p.shards))]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits++
	return s.bufs[n]
}

// BadShard reaches into shard state without the shard lock.
func BadShard(p *poolT, n int64) int {
	s := p.shards[n%int64(len(p.shards))]
	s.hits++         // want: write without shard lock
	return s.bufs[n] // want: read without shard lock
}

// BadShardStale keeps using the shard after releasing it.
func BadShardStale(s *shardT) int {
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	return s.hits // want: read after unlock
}

// vnodeT and fetchT mirror the client data-path pipeline: a vnode field
// lock ranking above the single-flight fetch table's lock (the golden
// test's LockOrder names these).
type vnodeT struct {
	mu       sync.Mutex
	flushing int // guarded by mu
}

type fetchT struct {
	mu       sync.Mutex
	inflight map[int64]bool // guarded by mu
}

// GoodPipeline peeks the flush count under the vnode lock, then
// consults the fetch table, respecting the order.
func GoodPipeline(v *vnodeT, ft *fetchT, idx int64) bool {
	v.mu.Lock()
	busy := v.flushing > 0
	v.mu.Unlock()
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return busy || ft.inflight[idx]
}

// BadPipelineOrder acquires the vnode lock while holding the fetch
// table's.
func BadPipelineOrder(v *vnodeT, ft *fetchT, idx int64) {
	ft.mu.Lock()
	v.mu.Lock() // want: hierarchy violation
	ft.inflight[idx] = true
	v.flushing++
	v.mu.Unlock()
	ft.mu.Unlock()
}

// BadFlushPeek reads the flush count without the vnode lock.
func BadFlushPeek(v *vnodeT) bool {
	return v.flushing == 0 // want: read without lock
}

// connT mirrors the per-association connection state: recovery flips it
// while vnodes consult it, so it ranks above the vnode field lock (the
// golden test's LockOrder names these).
type connT struct {
	mu    sync.Mutex
	state int // guarded by mu
}

// GoodRecoverOrder checks the association before touching the vnode.
func GoodRecoverOrder(sc *connT, v *vnodeT) bool {
	sc.mu.Lock()
	up := sc.state == 0
	sc.mu.Unlock()
	v.mu.Lock()
	defer v.mu.Unlock()
	return up && v.flushing == 0
}

// BadRecoverOrder grabs the connection state while holding the vnode
// lock — the deadlock recovery must avoid while walking the table.
func BadRecoverOrder(sc *connT, v *vnodeT) {
	v.mu.Lock()
	sc.mu.Lock() // want: hierarchy violation
	sc.state = 1
	v.flushing++
	sc.mu.Unlock()
	v.mu.Unlock()
}

// BadStatePeek reads the connection state without its lock.
func BadStatePeek(sc *connT) bool {
	return sc.state == 0 // want: read without lock
}

// tshardT and volT mirror the sharded token manager: per-shard token
// state behind each shard's own mutex, and a volume-index lock that ranks
// above every shard lock (the golden test's LockOrder names these).
type tshardT struct {
	mu      sync.Mutex
	serials map[int64]int // guarded by mu
}

type tmgrT struct {
	volMu  sync.Mutex
	vols   map[int64]int // guarded by volMu
	shards []*tshardT
}

// GoodTokenShard bumps a serial under the owning shard's lock.
func GoodTokenShard(m *tmgrT, fid int64) int {
	s := m.shards[fid%int64(len(m.shards))]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.serials[fid]++
	return s.serials[fid]
}

// BadCrossShardDouble locks the same shard expression twice — the
// cross-shard sweep gone wrong, re-entering a shard it already holds.
func BadCrossShardDouble(m *tmgrT, fid int64) {
	m.shards[fid%4].mu.Lock()
	m.shards[fid%4].mu.Lock() // want: double lock
	m.shards[fid%4].serials[fid]++
	m.shards[fid%4].mu.Unlock()
	m.shards[fid%4].mu.Unlock()
}

// GoodVolBeforeShard takes the volume index before the shard, the
// documented order for whole-volume grants.
func GoodVolBeforeShard(m *tmgrT, fid int64) {
	m.volMu.Lock()
	defer m.volMu.Unlock()
	m.vols[fid]++
	s := m.shards[fid%int64(len(m.shards))]
	s.mu.Lock()
	s.serials[fid]++
	s.mu.Unlock()
}

// BadShardBeforeVol discovers a whole-volume token under the shard lock
// and reaches for the volume index without releasing first — the inverted
// order the drop path must avoid.
func BadShardBeforeVol(m *tmgrT, fid int64) {
	s := m.shards[fid%int64(len(m.shards))]
	s.mu.Lock()
	s.serials[fid]++
	m.volMu.Lock() // want: hierarchy violation
	m.vols[fid]++
	m.volMu.Unlock()
	s.mu.Unlock()
}

// placementT and assocT mirror the striped-volume placement cache and
// the per-association send state (S28): a client resolves the stripe
// target under the placement lock, releases it, and only then touches
// the association — so placementT.mu ranks above assocT.mu (the golden
// test's LockOrder names these).
type placementT struct {
	mu      sync.Mutex
	targets map[int64]int // guarded by mu
}

type assocT struct {
	mu       sync.Mutex
	inflight int // guarded by mu
}

// GoodPlacementOrder resolves the stripe target first, then drives the
// chosen association.
func GoodPlacementOrder(p *placementT, a *assocT, chunk int64) int {
	p.mu.Lock()
	t := p.targets[chunk]
	p.mu.Unlock()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inflight++
	return t
}

// BadPlacementOrder consults the placement cache while already holding
// the association — the inversion a mid-send re-resolve would cause.
func BadPlacementOrder(p *placementT, a *assocT, chunk int64) {
	a.mu.Lock()
	p.mu.Lock() // want: hierarchy violation
	p.targets[chunk] = a.inflight
	p.mu.Unlock()
	a.mu.Unlock()
}

// BadTargetPeek reads the placement cache without its lock.
func BadTargetPeek(p *placementT, chunk int64) int {
	return p.targets[chunk] // want: read without lock
}

// verifierT mirrors the integrity verifier's mismatch table (S30): a
// pure leaf lock taken from the verify path while data-path locks are
// already held, with nothing ever acquired under it (the golden test's
// LockOrder ranks it innermost).
type verifierT struct {
	mu  sync.Mutex
	bad map[int64]int // guarded by mu
}

// GoodNoteUnderAssoc notes a mismatch while the association is held —
// the verify path's real shape, legal because verifierT.mu is the leaf.
func GoodNoteUnderAssoc(a *assocT, v *verifierT, chunk int64) {
	a.mu.Lock()
	v.mu.Lock()
	v.bad[chunk]++
	v.mu.Unlock()
	a.mu.Unlock()
}

// BadAssocUnderVerifier re-fetches while still inside the mismatch
// table — the inversion a retry-from-the-verifier would cause.
func BadAssocUnderVerifier(a *assocT, v *verifierT, chunk int64) {
	v.mu.Lock()
	a.mu.Lock() // want: hierarchy violation
	a.inflight += v.bad[chunk]
	a.mu.Unlock()
	v.mu.Unlock()
}

// BadChunkPeek reads the mismatch table without its lock.
func BadChunkPeek(v *verifierT, chunk int64) int {
	return v.bad[chunk] // want: read without lock
}

// relockHelper locks its receiver's mutex. No directive says so; only
// the interprocedural summary carries the fact to call sites.
func (c *counter) relockHelper() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// BadHelperDouble holds the lock and calls the helper that takes it
// again: a cross-function self-deadlock invisible to any
// single-function pass.
func (c *counter) BadHelperDouble() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.relockHelper() // want: cross-function double lock
}

// GoodHelperAfterUnlock calls the helper once the lock is back down.
func (c *counter) GoodHelperAfterUnlock() {
	c.mu.Lock()
	c.n = 1
	c.mu.Unlock()
	c.relockHelper()
}

// ring0 and ring1 are deliberately unranked (not in LockOrder): the
// cycle below is only findable from the whole-program lock-order graph,
// not from the documented hierarchy.
type ring0 struct {
	mu sync.Mutex
	x  int // guarded by mu
}

type ring1 struct {
	mu sync.Mutex
	y  int // guarded by mu
}

// takePeer and takeBack are the helpers whose summaries carry the lock
// acquisitions into their callers' held contexts.
func takePeer(r1 *ring1) {
	r1.mu.Lock()
	r1.y++
	r1.mu.Unlock()
}

func takeBack(r0 *ring0) {
	r0.mu.Lock()
	r0.x++
	r0.mu.Unlock()
}

// ForwardHop holds ring0.mu while the helper takes ring1.mu.
func ForwardHop(r0 *ring0, r1 *ring1) {
	r0.mu.Lock()
	takePeer(r1) // edge ring0.mu -> ring1.mu, via summary
	r0.mu.Unlock()
}

// BackHop holds ring1.mu while the helper takes ring0.mu, closing the
// helper-mediated lock-order cycle. // want: lock-order cycle
func BackHop(r0 *ring0, r1 *ring1) {
	r1.mu.Lock()
	takeBack(r0) // edge ring1.mu -> ring0.mu
	r1.mu.Unlock()
}
