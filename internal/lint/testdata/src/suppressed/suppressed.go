// Package suppressed exercises //lint:ignore handling: properly suppressed
// findings vanish, unsuppressed ones remain, malformed directives are
// themselves reported.
package suppressed

import (
	"sync"

	"decorum/internal/blockdev"
)

type box struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// OwnLine suppresses with a directive on the line above.
func OwnLine(b *box) {
	//lint:ignore lockcheck single-threaded test fixture
	b.n++
}

// Trailing suppresses with a trailing directive.
func Trailing(d blockdev.Device) {
	d.Sync() //lint:ignore errcheck-io best-effort flush in teardown
}

// WrongAnalyzer names the wrong analyzer, so the finding survives.
func WrongAnalyzer(b *box) {
	//lint:ignore errcheck-io does not match lockcheck
	b.n++ // want: lockcheck finding survives
}

// Malformed has no reason, which is itself a diagnostic — and does not
// suppress.
func Malformed(d blockdev.Device) {
	//lint:ignore errcheck-io
	d.Sync() // want: dropped error + malformed directive above
}
