// Package errbad seeds errcheck-io violations for the golden test.
package errbad

import (
	"decorum/internal/blockdev"
	"decorum/internal/wal"
)

// DropSync discards the Sync error as a bare statement.
func DropSync(d blockdev.Device) {
	d.Sync() // want: dropped error
}

// DropDeferredClose discards the Close error through defer.
func DropDeferredClose(d blockdev.Device) {
	defer d.Close() // want: dropped error
	d.BlockSize()
}

// DropBlank assigns the error to blank.
func DropBlank(d blockdev.Device, p []byte) {
	_ = d.Write(0, p) // want: dropped error
}

// DropFlush discards a wal flush.
func DropFlush(l *wal.Log) {
	l.Sync() // want: dropped error
}

// Checked propagates; no finding.
func Checked(d blockdev.Device) error {
	if err := d.Sync(); err != nil {
		return err
	}
	return d.Close()
}

// NonError calls a method with no error result; no finding.
func NonError(d blockdev.Device) int {
	return d.BlockSize()
}
