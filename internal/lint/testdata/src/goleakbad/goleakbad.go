// Package goleakbad seeds goleak violations for the golden test:
// goroutines in long-lived types with no path to shutdown.
package goleakbad

import "sync"

type daemon struct {
	done chan struct{}
	work chan int
	wg   sync.WaitGroup
}

func process(int) {}

// StartLeaky spawns a loop nothing can stop.
func (d *daemon) StartLeaky() {
	go func() { // want: no shutdown mechanism
		for {
			process(0)
		}
	}()
}

// StartGoodDone ties the loop to the done channel.
func (d *daemon) StartGoodDone() {
	go func() {
		for {
			select {
			case <-d.done:
				return
			case n := <-d.work:
				process(n)
			}
		}
	}()
}

// StartGoodWG signals completion through the WaitGroup.
func (d *daemon) StartGoodWG() {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		process(0)
	}()
}

// StartGoodRange drains the work channel until the producer closes it.
func (d *daemon) StartGoodRange() {
	go func() {
		for n := range d.work {
			process(n)
		}
	}()
}

// loop runs forever with no shutdown signal.
func (d *daemon) loop() {
	for {
		process(0)
	}
}

// loopDone watches the done channel.
func (d *daemon) loopDone() {
	for {
		select {
		case <-d.done:
			return
		default:
			process(0)
		}
	}
}

// StartLeakyNamed spawns the unstoppable named worker.
func (d *daemon) StartLeakyNamed() {
	go d.loop() // want: no shutdown mechanism
}

// StartGoodNamed spawns the named worker that honours done.
func (d *daemon) StartGoodNamed() {
	go d.loopDone()
}

// helperSpawn buries the naked spawn one call deep; the go statement
// itself is still the finding site.
func (d *daemon) helperSpawn() {
	go d.loop() // want: no shutdown mechanism
}

// Kick exercises the helper.
func (d *daemon) Kick() {
	d.helperSpawn()
}
