// Package errbadclass seeds errclass violations for the golden test:
// sentinel identity comparisons and RPC calls whose errors escape
// unclassified.
package errbadclass

import (
	"errors"
	"fmt"

	"decorum/internal/fs"
	"decorum/internal/proto"
	"decorum/internal/rpc"
)

// BadEq tests a sentinel with ==.
func BadEq(err error) bool {
	return err == fs.ErrStale // want: sentinel compared with ==
}

// BadNeq tests a sentinel with !=.
func BadNeq(err error) bool {
	return err != fs.ErrNotExist // want: sentinel compared with !=
}

// BadSwitch hides the identity test in a switch.
func BadSwitch(err error) string {
	switch err {
	case fs.ErrPerm: // want: sentinel in error switch
		return "denied"
	case nil:
		return "ok"
	}
	return "other"
}

// GoodIs uses errors.Is; wrapped errors still match.
func GoodIs(err error) bool {
	return errors.Is(err, fs.ErrStale)
}

// GoodNilCheck compares against nil, not a sentinel.
func GoodNilCheck(err error) bool {
	return err == nil
}

// BadReturnRaw hands the transport error up without classifying it.
func BadReturnRaw(p *rpc.Peer) error {
	var reply struct{}
	return p.Call("dfs.FetchStatus", struct{}{}, &reply) // want: returned raw
}

// BadDiscard throws the error away entirely.
func BadDiscard(p *rpc.Peer) {
	var reply struct{}
	_ = p.Call("dfs.ReturnTokens", struct{}{}, &reply) // want: discarded
}

// BadDrop drops the error as a bare statement.
func BadDrop(p *rpc.Peer) {
	p.Call("dfs.Probe", struct{}{}, nil) // want: discarded
}

// BadUnclassified captures the error but never classifies it.
func BadUnclassified(p *rpc.Peer) error {
	var reply struct{}
	err := p.Call("dfs.StoreData", struct{}{}, &reply) // want: never classified
	if err != nil {
		return fmt.Errorf("store: %v", err)
	}
	return nil
}

// GoodDecode wraps the call in the configured classifier.
func GoodDecode(p *rpc.Peer) error {
	var reply struct{}
	return proto.DecodeErr(p.Call("dfs.FetchData", struct{}{}, &reply))
}

// GoodClassified flows the error through errors.Is before returning.
func GoodClassified(p *rpc.Peer) error {
	var reply struct{}
	err := p.Call("dfs.Remove", struct{}{}, &reply)
	if errors.Is(err, fs.ErrStale) {
		return nil
	}
	return err
}

// GoodSuppressed documents why the error may drop.
func GoodSuppressed(p *rpc.Peer) {
	//lint:ignore errclass probe is best-effort; the lease expiry catches dead hosts
	p.Call("dfs.Probe", struct{}{}, nil)
}
