package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// This file implements the interprocedural half of lockcheck and the
// shared function-fact database the goleak analyzer consults.
//
// A funcSummary describes one function's externally visible behavior:
// which mutexes it needs held on entry (requires), which it leaves held
// at return (acquires), which it releases on behalf of the caller
// (releases), every mutex it locks anywhere inside, transitively
// (touches), which RPC methods it can issue, and whether its control
// flow is tied to a shutdown signal (aware). Summaries are computed by
// running the same abstract interpreter lockcheck uses, in a quiet
// summary mode, to a whole-program fixpoint — so helpers like the
// client's llock/lunlock or the WAL's flushLocked need no //lint:
// directives: their effects are inferred from their bodies and applied
// at every call site.
//
// Inference policy: `requires` facts are published (enforced at call
// sites, assumed held on entry) only for unexported functions, functions
// following the *Locked naming convention, and functions carrying an
// explicit //lint:holds directive. Exported API functions keep the
// intra-procedural behavior — their guarded accesses are reported
// locally — so a public entry point can never silently inherit a lock
// assumption. When a function has lock directives, the directives win
// and no lock inference runs for it.
//
// On top of the summaries, the checker builds a whole-program lock-order
// graph. Nodes are mutex fields plus synthetic rpc(method) nodes; an
// edge A→B means "B can be acquired while A is held". RPC call sites
// with a constant method connect the held set to rpc(method); the
// handler registered for that method (collected from Peer.Handle calls)
// connects rpc(method) onward to everything the handler can lock or
// call. Cycles containing at least one mutex are reported as potential
// deadlocks. Cycles made only of rpc nodes — e.g. the store→revoke→
// store callback chain — are deliberately not reported: PR 3's reserved
// priority workers break pure call-level cycles, but no scheduler can
// break a mutex wait.

// funcSummary is one function's interprocedural facts.
type funcSummary struct {
	fn           *types.Func
	requires     map[*types.Var]lockMode // mutexes that must be held on entry (mode = minimum)
	acquires     map[*types.Var]lockMode // net: held at return, not held at entry
	releases     map[*types.Var]bool     // unlocked on behalf of the caller
	touches      map[*types.Var]bool     // locked anywhere inside, transitively, concretely resolved
	ifaceTouches map[*types.Var]bool     // touches reachable only through interface-method merges
	selfLocks    map[*types.Var]bool     // locked on the function's own receiver (see below)
	rpcAll       bool                    // issues an RPC with a non-constant method
	rpcMethods   map[string]bool         // constant RPC methods issued, transitively
	aware        bool                    // control flow tied to a shutdown signal
	publish      bool                    // requires are enforced at call sites
	directived   bool                    // lock facts come from //lint: directives
}

func newFuncSummary(fn *types.Func) *funcSummary {
	return &funcSummary{
		fn:           fn,
		requires:     make(map[*types.Var]lockMode),
		acquires:     make(map[*types.Var]lockMode),
		releases:     make(map[*types.Var]bool),
		touches:      make(map[*types.Var]bool),
		ifaceTouches: make(map[*types.Var]bool),
		selfLocks:    make(map[*types.Var]bool),
		rpcMethods:   make(map[string]bool),
	}
}

func (a *funcSummary) equal(b *funcSummary) bool {
	if b == nil {
		return false
	}
	if a.rpcAll != b.rpcAll || a.aware != b.aware ||
		len(a.requires) != len(b.requires) || len(a.acquires) != len(b.acquires) ||
		len(a.releases) != len(b.releases) || len(a.touches) != len(b.touches) ||
		len(a.ifaceTouches) != len(b.ifaceTouches) ||
		len(a.selfLocks) != len(b.selfLocks) || len(a.rpcMethods) != len(b.rpcMethods) {
		return false
	}
	for k := range a.selfLocks {
		if !b.selfLocks[k] {
			return false
		}
	}
	for k, v := range a.requires {
		if b.requires[k] != v {
			return false
		}
	}
	for k, v := range a.acquires {
		if b.acquires[k] != v {
			return false
		}
	}
	for k := range a.releases {
		if !b.releases[k] {
			return false
		}
	}
	for k := range a.touches {
		if !b.touches[k] {
			return false
		}
	}
	for k := range a.ifaceTouches {
		if !b.ifaceTouches[k] {
			return false
		}
	}
	for k := range a.rpcMethods {
		if !b.rpcMethods[k] {
			return false
		}
	}
	return true
}

// lockEffects is the call-site view of a callee: either its directives
// or its (published part of the) inferred summary.
//
// touches is type-level and transitive — it cannot tell two instances of
// the same type apart, so it drives only the hierarchy check and the
// lock-order graph. ifaceTouches is the weaker tier: mutexes reachable
// only by merging the implementations of a module interface. A merge
// unions instance-disjoint implementations (the server's vfs.Vnode
// dispatch can never land on the client's cvnode), so these feed
// neither the hierarchy check nor the lock-order graph — they are kept
// only so summaries stay monotone across the fixpoint. selfLocks is the
// instance-accurate subset: mutexes the callee locks on its own
// receiver (directly or through a same-receiver helper chain). Calling
// a method while holding one of its selfLocks mutexes on the same
// receiver is a self-deadlock.
type lockEffects struct {
	requires     map[*types.Var]lockMode
	acquires     map[*types.Var]lockMode
	releases     map[*types.Var]bool
	touches      map[*types.Var]bool
	ifaceTouches map[*types.Var]bool
	selfLocks    map[*types.Var]bool
	rpcAll       bool
	rpcMethods   map[string]bool
}

// declInfo locates one function declaration.
type declInfo struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// handlerReg is one Peer.Handle registration site.
type handlerReg struct {
	method string // "" = non-constant method expression
	sum    *funcSummary
	pos    token.Pos
}

// edgeKey is one lock-order edge: node keys are "m:<pkg>.<Type>.<field>"
// for mutexes and "r:<method>" / "r:*" for RPC calls.
type edgeKey struct {
	from, to string
}

type summaries struct {
	loader *Loader
	cfg    *Config
	ann    *annotations

	funcs map[*types.Func]*funcSummary
	decls map[*types.Func]declInfo
	order []*types.Func // deterministic fixpoint order

	impls    map[*types.Func][]*types.Func // interface method -> module implementations
	litCache map[*ast.FuncLit]*funcSummary

	handlers []handlerReg

	peerCalls map[string]bool // full names of RPC entry-point methods

	// mutex naming, for diagnostics and graph nodes
	mutexKey  map[*types.Var]string // unique node key
	mutexDisp map[*types.Var]string // "Type.field" display
	mutexPkg  map[*types.Var]string // package short name

	edges map[edgeKey]token.Pos
}

// computeSummaries builds the whole-program summary database by fixpoint
// over every loaded module package.
func computeSummaries(loader *Loader, cfg *Config, ann *annotations) *summaries {
	s := &summaries{
		loader:    loader,
		cfg:       cfg,
		ann:       ann,
		funcs:     make(map[*types.Func]*funcSummary),
		decls:     make(map[*types.Func]declInfo),
		impls:     make(map[*types.Func][]*types.Func),
		litCache:  make(map[*ast.FuncLit]*funcSummary),
		peerCalls: make(map[string]bool),
		mutexKey:  make(map[*types.Var]string),
		mutexDisp: make(map[*types.Var]string),
		mutexPkg:  make(map[*types.Var]string),
		edges:     make(map[edgeKey]token.Pos),
	}
	for _, name := range cfg.RPCCallMethods {
		s.peerCalls[name] = true
	}
	s.index()
	// Fixpoint: summaries only grow (requires/acquires start empty and
	// accumulate facts from callee summaries of the previous round), so
	// this converges; the cap is a safety net for pathological call
	// graphs.
	for iter := 0; iter < 12; iter++ {
		changed := false
		for _, fn := range s.order {
			ns := s.summarize(fn)
			if !ns.equal(s.funcs[fn]) {
				changed = true
			}
			s.funcs[fn] = ns
		}
		if !changed {
			break
		}
	}
	s.collectHandlers()
	return s
}

// index walks every loaded module package recording function decls,
// interface implementations, and mutex display names.
func (s *summaries) index() {
	for _, p := range s.loader.Packages() {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if ok && fd.Body != nil {
					if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
						s.decls[fn] = declInfo{pkg: p, decl: fd}
						s.order = append(s.order, fn)
					}
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				tn, _ := p.Info.Defs[ts.Name].(*types.TypeName)
				if tn == nil {
					return true
				}
				st, ok := tn.Type().Underlying().(*types.Struct)
				if !ok {
					return true
				}
				for i := 0; i < st.NumFields(); i++ {
					fv := st.Field(i)
					if _, isMutex := mutexKind(fv.Type()); isMutex {
						s.mutexKey[fv] = "m:" + p.ImportPath + "." + tn.Name() + "." + fv.Name()
						s.mutexDisp[fv] = tn.Name() + "." + fv.Name()
						s.mutexPkg[fv] = p.Name
					}
				}
				return true
			})
		}
	}
}

// implsOf resolves an interface method to the module's concrete methods
// implementing it (e.g. token.Host.Revoke → server.clientHost.Revoke).
// Only interfaces declared inside the module are resolved: structural
// matching against one-method stdlib interfaces (io.Writer, io.Closer)
// would union the effects of every type in the tree with a Write or
// Close method and saturate all summaries.
func (s *summaries) implsOf(fn *types.Func) []*types.Func {
	if impls, ok := s.impls[fn]; ok {
		return impls
	}
	var out []*types.Func
	if fn.Pkg() == nil || !s.loader.isModulePath(fn.Pkg().Path()) {
		s.impls[fn] = nil
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		s.impls[fn] = nil
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	if iface == nil {
		s.impls[fn] = nil
		return nil
	}
	for _, cand := range s.order {
		if cand.Name() != fn.Name() {
			continue
		}
		csig, _ := cand.Type().(*types.Signature)
		if csig == nil || csig.Recv() == nil {
			continue
		}
		rt := csig.Recv().Type()
		if _, ok := rt.Underlying().(*types.Interface); ok {
			continue
		}
		if types.Implements(rt, iface) || types.Implements(types.NewPointer(rt), iface) {
			out = append(out, cand)
		}
	}
	s.impls[fn] = out
	return out
}

// isInterfaceMethod reports whether fn is declared on an interface.
func isInterfaceMethod(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	_, ok := sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

// effectsOf is the call-site view of fn. Directives win; otherwise the
// inferred summary is used, with requires gated by the publish policy.
// Interface methods merge their implementations: requires/acquires by
// intersection (only what every implementation guarantees), the rest by
// union (anything any implementation can do).
func (s *summaries) effectsOf(fn *types.Func) lockEffects {
	if fn == nil {
		return lockEffects{}
	}
	if s.hasDirectives(fn) {
		eff := lockEffects{
			requires:   make(map[*types.Var]lockMode),
			acquires:   make(map[*types.Var]lockMode),
			releases:   make(map[*types.Var]bool),
			touches:    make(map[*types.Var]bool),
			selfLocks:  make(map[*types.Var]bool),
			rpcMethods: make(map[string]bool),
		}
		for _, g := range s.ann.funcHolds[fn] {
			eff.requires[g.mutex] = modeExclusive
		}
		// A //lint:locks directive describes locking the receiver's own
		// mutex, so it is instance-accurate: count it for the
		// double-lock check too.
		for _, g := range s.ann.funcLocks[fn] {
			eff.acquires[g.mutex] = modeExclusive
			eff.touches[g.mutex] = true
			eff.selfLocks[g.mutex] = true
		}
		for _, g := range s.ann.funcRLocks[fn] {
			eff.acquires[g.mutex] = modeRead
			eff.touches[g.mutex] = true
			eff.selfLocks[g.mutex] = true
		}
		for _, g := range s.ann.funcUnlocks[fn] {
			eff.releases[g.mutex] = true
		}
		if sum := s.funcs[fn]; sum != nil {
			eff.rpcAll = sum.rpcAll
			for m := range sum.rpcMethods {
				eff.rpcMethods[m] = true
			}
		}
		return eff
	}
	if isInterfaceMethod(fn) {
		return s.mergeImpls(s.implsFor(fn, nil))
	}
	sum := s.funcs[fn]
	if sum == nil {
		return lockEffects{}
	}
	eff := lockEffects{
		acquires:     sum.acquires,
		releases:     sum.releases,
		touches:      sum.touches,
		ifaceTouches: sum.ifaceTouches,
		selfLocks:    sum.selfLocks,
		rpcAll:       sum.rpcAll,
		rpcMethods:   sum.rpcMethods,
	}
	if sum.publish {
		eff.requires = sum.requires
	}
	return eff
}

// effectsOfExcluding is effectsOf with caller context: when fn is an
// interface method and the caller is itself a method of one of the
// implementations, that implementation is excluded from the merge. A
// wrapper type (SimDevice around a Device) calling through its wrapped
// interface cannot reach itself — instances wrap in a DAG — and keeping
// the self type in the merge would report every wrapper as deadlocking
// against its own mutex.
func (s *summaries) effectsOfExcluding(fn *types.Func, callerRecv *types.TypeName) lockEffects {
	if fn == nil {
		return lockEffects{}
	}
	if callerRecv != nil && isInterfaceMethod(fn) && !s.hasDirectives(fn) {
		return s.mergeImpls(s.implsFor(fn, callerRecv))
	}
	return s.effectsOf(fn)
}

// implsFor filters implsOf by the caller's receiver type.
func (s *summaries) implsFor(fn *types.Func, exclude *types.TypeName) []*types.Func {
	impls := s.implsOf(fn)
	if exclude == nil {
		return impls
	}
	out := impls[:0:0]
	for _, impl := range impls {
		if recvTypeName(impl) != exclude {
			out = append(out, impl)
		}
	}
	return out
}

// recvTypeName returns the named type of fn's receiver, nil for plain
// functions.
func recvTypeName(fn *types.Func) *types.TypeName {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// mergeImpls combines the effects of an interface method's possible
// targets. Touches demote to ifaceTouches: the union of
// instance-disjoint implementations must not feed the hierarchy check
// or the lock-order graph (see lockEffects).
func (s *summaries) mergeImpls(impls []*types.Func) lockEffects {
	eff := lockEffects{
		requires:     make(map[*types.Var]lockMode),
		acquires:     make(map[*types.Var]lockMode),
		releases:     make(map[*types.Var]bool),
		touches:      make(map[*types.Var]bool),
		ifaceTouches: make(map[*types.Var]bool),
		selfLocks:    make(map[*types.Var]bool),
		rpcMethods:   make(map[string]bool),
	}
	for i, impl := range impls {
		ie := s.effectsOf(impl)
		if i == 0 {
			for k, v := range ie.requires {
				eff.requires[k] = v
			}
			for k, v := range ie.acquires {
				eff.acquires[k] = v
			}
		} else {
			for k, v := range eff.requires {
				if iv, ok := ie.requires[k]; !ok {
					delete(eff.requires, k)
				} else if iv < v {
					eff.requires[k] = iv
				}
			}
			for k, v := range eff.acquires {
				if iv, ok := ie.acquires[k]; !ok {
					delete(eff.acquires, k)
				} else if iv < v {
					eff.acquires[k] = iv
				}
			}
		}
		for k := range ie.releases {
			eff.releases[k] = true
		}
		for k := range ie.touches {
			eff.ifaceTouches[k] = true
		}
		for k := range ie.ifaceTouches {
			eff.ifaceTouches[k] = true
		}
		for k := range ie.selfLocks {
			eff.selfLocks[k] = true
		}
		eff.rpcAll = eff.rpcAll || ie.rpcAll
		for m := range ie.rpcMethods {
			eff.rpcMethods[m] = true
		}
	}
	return eff
}

func (s *summaries) hasDirectives(fn *types.Func) bool {
	return len(s.ann.funcHolds[fn])+len(s.ann.funcLocks[fn])+
		len(s.ann.funcRLocks[fn])+len(s.ann.funcUnlocks[fn]) > 0
}

// awareOf reports whether fn's control flow is (transitively) tied to a
// shutdown signal. Used by goleak at `go f()` statements.
func (s *summaries) awareOf(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if isInterfaceMethod(fn) {
		impls := s.implsOf(fn)
		if len(impls) == 0 {
			return false
		}
		for _, impl := range impls {
			if !s.awareOf(impl) {
				return false
			}
		}
		return true
	}
	sum := s.funcs[fn]
	return sum != nil && sum.aware
}

// summarize computes one round of fn's summary from its body and the
// previous round's callee summaries.
func (s *summaries) summarize(fn *types.Func) *funcSummary {
	d := s.decls[fn]
	sum := newFuncSummary(fn)
	sum.directived = s.hasDirectives(fn)
	sum.publish = !fn.Exported() || strings.HasSuffix(fn.Name(), "Locked") ||
		len(s.ann.funcHolds[fn]) > 0
	s.scanFacts(d.pkg, d.decl.Body, sum)
	if sum.directived {
		for _, g := range s.ann.funcHolds[fn] {
			sum.requires[g.mutex] = modeExclusive
		}
		for _, g := range s.ann.funcLocks[fn] {
			sum.acquires[g.mutex] = modeExclusive
			sum.touches[g.mutex] = true
		}
		for _, g := range s.ann.funcRLocks[fn] {
			sum.acquires[g.mutex] = modeRead
			sum.touches[g.mutex] = true
		}
		for _, g := range s.ann.funcUnlocks[fn] {
			sum.releases[g.mutex] = true
		}
		return sum
	}
	s.interpret(d.pkg, d.decl, sum)
	return sum
}

// interpret runs the lockcheck abstract interpreter over fn's body in
// summary mode: diagnostics suppressed, lock facts recorded.
func (s *summaries) interpret(p *Package, fd *ast.FuncDecl, sum *funcSummary) {
	fc := s.runInterp(p, fd, sum, nil)
	if len(fc.entryNeed) > 0 {
		// An unlock-first function (the group-commit leader pattern:
		// stage under the lock, drop it around device I/O, retake it)
		// held these mutexes on entry. Re-run seeded with them held so
		// the drop/retake nets out instead of reading as a release.
		fc = s.runInterp(p, fd, sum, fc.entryNeed)
	}
	s.finishSummary(fc, sum)
}

// runInterp performs one interpretation pass, optionally seeding the
// entry lock state with mutexes inferred held on entry.
func (s *summaries) runInterp(p *Package, fd *ast.FuncDecl, sum *funcSummary, seed map[*types.Var]lockMode) *funcCtx {
	fc := s.newSummaryCtx(p, sum)
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		fc.ownRecv = fd.Recv.List[0].Names[0].Name
	}
	fc.ownRecvType = recvTypeName(sum.fn)
	fc.collectLocals(fd.Body)
	fc.entrySeed = seed
	st := newLockState()
	for mv, m := range seed {
		st.held[mv] = heldInfo{mode: m}
	}
	terminated := fc.stmt(fd.Body, st)
	if !terminated {
		fc.exit = append(fc.exit, st)
	}
	return fc
}

func (s *summaries) newSummaryCtx(p *Package, sum *funcSummary) *funcCtx {
	return &funcCtx{
		c:           &lockChecker{loader: s.loader, pkg: p, ann: s.ann},
		sums:        s,
		sum:         sum,
		locals:      make(map[types.Object]bool),
		inferReq:    make(map[*types.Var]lockMode),
		selfOps:     make(map[*types.Var]bool),
		released:    make(map[*types.Var]bool),
		deferredRel: make(map[*types.Var]bool),
		entryNeed:   make(map[*types.Var]lockMode),
	}
}

// finishSummary folds the interpreter's final state into sum: net
// acquisitions are what survives every exit path minus deferred
// releases; requires are inferred needs minus anything the function
// acquires itself first (a function whose first own operation on a
// mutex is a lock or try-lock manages that lock and must not be assumed
// to need it on entry — but one that unlocks it first, like a flush
// helper that drops the lock around device I/O, does require it).
func (s *summaries) finishSummary(fc *funcCtx, sum *funcSummary) {
	exit := intersectStates(fc.exit)
	for mv, hi := range exit.held {
		// A mutex held since entry (seeded) is a requirement, not a net
		// acquisition.
		if !fc.deferredRel[mv] && fc.entrySeed[mv] == 0 {
			sum.acquires[mv] = hi.mode
		}
	}
	for mv := range fc.released {
		sum.releases[mv] = true
	}
	for mv := range fc.entrySeed {
		if _, ok := exit.held[mv]; !ok {
			sum.releases[mv] = true
		}
	}
	for mv, need := range fc.inferReq {
		if !fc.selfOps[mv] {
			sum.requires[mv] = need
		}
	}
	for mv, need := range fc.entrySeed {
		if sum.requires[mv] < need {
			sum.requires[mv] = need
		}
	}
}

// litSummary computes a summary for a function literal (used for RPC
// handlers registered as closures). Must be called after the fixpoint.
func (s *summaries) litSummary(p *Package, lit *ast.FuncLit) *funcSummary {
	if sum, ok := s.litCache[lit]; ok {
		return sum
	}
	sum := newFuncSummary(nil)
	s.scanFacts(p, lit.Body, sum)
	fc := s.newSummaryCtx(p, sum)
	fc.collectLocals(lit.Body)
	st := newLockState()
	terminated := fc.stmt(lit.Body, st)
	if !terminated {
		fc.exit = append(fc.exit, st)
	}
	s.finishSummary(fc, sum)
	s.litCache[lit] = sum
	return sum
}

// scanFacts records fn's direct and callee-propagated RPC and
// shutdown-awareness facts by plain AST scan.
func (s *summaries) scanFacts(p *Package, body ast.Node, sum *funcSummary) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeOf(p, n)
			if fn == nil {
				return true
			}
			// Done() covers ctx.Done(), wg.Done(), and peer.Done().
			if fn.Name() == "Done" {
				sum.aware = true
			}
			if s.peerCalls[fn.FullName()] {
				if m := constStringArg(p, n, 0); m != "" {
					sum.rpcMethods[m] = true
				} else {
					sum.rpcAll = true
				}
			}
			for _, cal := range s.calleeTargets(fn) {
				cs := s.funcs[cal]
				if cs == nil {
					continue
				}
				if cs.aware {
					sum.aware = true
				}
				if cs.rpcAll {
					sum.rpcAll = true
				}
				for m := range cs.rpcMethods {
					sum.rpcMethods[m] = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && chanNameAware(n.X) {
				sum.aware = true
			}
		case *ast.SendStmt:
			if chanNameAware(n.Chan) {
				sum.aware = true
			}
		case *ast.RangeStmt:
			// Ranging over a channel ends when the producer closes it —
			// a shutdown mechanism in its own right.
			if tv, ok := p.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					sum.aware = true
				}
			}
		}
		return true
	})
}

// calleeTargets expands an interface method to its implementations, or
// returns the function itself.
func (s *summaries) calleeTargets(fn *types.Func) []*types.Func {
	if isInterfaceMethod(fn) {
		return s.implsOf(fn)
	}
	return []*types.Func{fn}
}

// chanNameAware reports whether a channel expression looks like a
// shutdown signal by name: done/stop/quit/close(d)/exit/shutdown
// channels and semaphores.
func chanNameAware(e ast.Expr) bool {
	name := ""
	for name == "" {
		switch x := e.(type) {
		case *ast.Ident:
			name = x.Name
		case *ast.SelectorExpr:
			name = x.Sel.Name
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return false
		}
	}
	lower := strings.ToLower(name)
	for _, sig := range []string{"done", "stop", "quit", "clos", "exit", "shutdown", "sem"} {
		if strings.Contains(lower, sig) {
			return true
		}
	}
	return false
}

// calleeOf resolves a call expression to its static callee, if any.
func calleeOf(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// constStringArg returns call's i-th argument as a constant string, or
// "" when absent or not constant.
func constStringArg(p *Package, call *ast.CallExpr, i int) string {
	if i >= len(call.Args) {
		return ""
	}
	tv, ok := p.Info.Types[call.Args[i]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return ""
	}
	return constant.StringVal(tv.Value)
}

// --- RPC handler registry ---

// collectHandlers finds every Peer.Handle(method, handler) registration
// and attaches the handler's summary to the method node of the
// lock-order graph.
func (s *summaries) collectHandlers() {
	if s.cfg.RPCHandleMethod == "" {
		return
	}
	for _, p := range s.loader.Packages() {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) < 2 {
					return true
				}
				fn := calleeOf(p, call)
				if fn == nil || fn.FullName() != s.cfg.RPCHandleMethod {
					return true
				}
				sum := s.handlerSummary(p, call.Args[1])
				if sum == nil {
					return true
				}
				s.handlers = append(s.handlers, handlerReg{
					method: constStringArg(p, call, 0),
					sum:    sum,
					pos:    call.Pos(),
				})
				return true
			})
		}
	}
}

// handlerSummary resolves a handler expression — a method value, a
// function literal, or a wrapper call like wrap(func(...){...}) — to a
// summary.
func (s *summaries) handlerSummary(p *Package, e ast.Expr) *funcSummary {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.FuncLit:
			return s.litSummary(p, x)
		case *ast.Ident:
			if fn, ok := p.Info.Uses[x].(*types.Func); ok {
				return s.funcs[fn]
			}
			return nil
		case *ast.SelectorExpr:
			if fn, ok := p.Info.Uses[x.Sel].(*types.Func); ok {
				return s.funcs[fn]
			}
			return nil
		case *ast.CallExpr:
			// A wrapper (middleware) call: the handler is one of its
			// arguments. Merge the summaries of every resolvable argument
			// with the wrapper's own.
			merged := newFuncSummary(nil)
			if fn := calleeOf(p, x); fn != nil {
				if ws := s.funcs[fn]; ws != nil {
					mergeInto(merged, ws)
				}
			}
			for _, a := range x.Args {
				if as := s.handlerSummary(p, a); as != nil {
					mergeInto(merged, as)
				}
			}
			return merged
		default:
			return nil
		}
	}
}

func mergeInto(dst, src *funcSummary) {
	for k := range src.touches {
		dst.touches[k] = true
	}
	for k := range src.ifaceTouches {
		dst.ifaceTouches[k] = true
	}
	dst.rpcAll = dst.rpcAll || src.rpcAll
	for m := range src.rpcMethods {
		dst.rpcMethods[m] = true
	}
	dst.aware = dst.aware || src.aware
}

// --- lock-order graph ---

// recordEdge notes "to acquired while from held". Self edges are
// skipped: re-locking the same type through a different instance is the
// ordered multi-instance pattern, and same-instance re-locking is the
// double-lock check's job.
func (s *summaries) recordEdge(from, to string, pos token.Pos) {
	if from == to {
		return
	}
	k := edgeKey{from: from, to: to}
	if _, ok := s.edges[k]; !ok {
		s.edges[k] = pos
	}
}

func (s *summaries) mutexNode(mv *types.Var) string {
	if k, ok := s.mutexKey[mv]; ok {
		return k
	}
	return "m:" + mv.Name()
}

// nodeDisplay renders a graph node for a diagnostic message.
func (s *summaries) nodeDisplay(node string) string {
	if rest, ok := strings.CutPrefix(node, "r:"); ok {
		if rest == "*" {
			return "rpc(any)"
		}
		return "rpc(" + rest + ")"
	}
	rest := strings.TrimPrefix(node, "m:")
	// Compress "import/path.Type.field" to "pkg.Type.field".
	if i := strings.LastIndex(rest, "/"); i >= 0 {
		rest = rest[i+1:]
	}
	return rest
}

// cycleDiagnostics runs SCC detection over the lock-order graph and
// reports one canonical cycle per strongly connected component that
// involves at least one mutex.
func (s *summaries) cycleDiagnostics() []Diagnostic {
	adj := make(map[string]map[string]token.Pos)
	addEdge := func(from, to string, pos token.Pos) {
		if from == to {
			return
		}
		m := adj[from]
		if m == nil {
			m = make(map[string]token.Pos)
			adj[from] = m
		}
		if _, ok := m[to]; !ok {
			m[to] = pos
		}
	}
	for k, pos := range s.edges {
		addEdge(k.from, k.to, pos)
	}
	// Handler edges: rpc(method) reaches everything its handler locks or
	// calls. A non-constant registration or call fans out through r:*.
	for _, h := range s.handlers {
		from := "r:" + h.method
		if h.method == "" {
			from = "r:*"
		}
		for mv := range h.sum.touches {
			addEdge(from, s.mutexNode(mv), h.pos)
		}
		for m := range h.sum.rpcMethods {
			addEdge(from, "r:"+m, h.pos)
		}
		if h.sum.rpcAll {
			addEdge(from, "r:*", h.pos)
		}
	}
	for _, h := range s.handlers {
		if h.method != "" {
			addEdge("r:*", "r:"+h.method, h.pos)
		}
	}

	var diags []Diagnostic
	for _, comp := range stronglyConnected(adj) {
		if len(comp) < 2 {
			continue
		}
		inComp := make(map[string]bool, len(comp))
		hasMutex := false
		for _, n := range comp {
			inComp[n] = true
			if strings.HasPrefix(n, "m:") {
				hasMutex = true
			}
		}
		// Pure-RPC cycles (the priority-revoke callback chain) are broken
		// by the reserved worker classes; only mutex-bearing cycles are
		// unbreakable waits.
		if !hasMutex {
			continue
		}
		sort.Strings(comp)
		start := ""
		for _, n := range comp {
			if strings.HasPrefix(n, "m:") {
				start = n
				break
			}
		}
		path := shortestCycle(adj, inComp, start)
		if path == nil {
			continue
		}
		names := make([]string, 0, len(path)+1)
		for _, n := range path {
			names = append(names, s.nodeDisplay(n))
		}
		names = append(names, s.nodeDisplay(start))
		pos := adj[path[0]][path[1%len(path)]]
		if len(path) > 1 {
			pos = adj[path[0]][path[1]]
		} else {
			pos = adj[path[0]][start]
		}
		diags = append(diags, mkdiag(s.loader.Fset, AnalyzerLock, pos,
			"lock-order cycle (potential deadlock): %s", strings.Join(names, " -> ")))
	}
	return diags
}

// shortestCycle BFSes within one component from start back to itself and
// returns the node sequence (start first, start not repeated).
func shortestCycle(adj map[string]map[string]token.Pos, inComp map[string]bool, start string) []string {
	type queued struct {
		node string
		path []string
	}
	visited := map[string]bool{}
	queue := []queued{{node: start, path: []string{start}}}
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		succs := make([]string, 0, len(adj[q.node]))
		for n := range adj[q.node] {
			succs = append(succs, n)
		}
		sort.Strings(succs)
		for _, n := range succs {
			if n == start && len(q.path) > 1 {
				return q.path
			}
			if !inComp[n] || visited[n] {
				continue
			}
			visited[n] = true
			path := make([]string, len(q.path), len(q.path)+1)
			copy(path, q.path)
			queue = append(queue, queued{node: n, path: append(path, n)})
		}
	}
	return nil
}

// stronglyConnected is an iterative Tarjan SCC over the string graph.
func stronglyConnected(adj map[string]map[string]token.Pos) [][]string {
	nodes := make([]string, 0, len(adj))
	seen := map[string]bool{}
	addNode := func(n string) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	for from, tos := range adj {
		addNode(from)
		for to := range tos {
			addNode(to)
		}
	}
	sort.Strings(nodes)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var comps [][]string
	next := 0

	type frame struct {
		node  string
		succs []string
		i     int
	}
	succsOf := func(n string) []string {
		out := make([]string, 0, len(adj[n]))
		for to := range adj[n] {
			out = append(out, to)
		}
		sort.Strings(out)
		return out
	}
	for _, root := range nodes {
		if _, ok := index[root]; ok {
			continue
		}
		var frames []frame
		push := func(n string) {
			index[n] = next
			low[n] = next
			next++
			stack = append(stack, n)
			onStack[n] = true
			frames = append(frames, frame{node: n, succs: succsOf(n)})
		}
		push(root)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succs) {
				succ := f.succs[f.i]
				f.i++
				if _, ok := index[succ]; !ok {
					push(succ)
				} else if onStack[succ] {
					if index[succ] < low[f.node] {
						low[f.node] = index[succ]
					}
				}
				continue
			}
			if low[f.node] == index[f.node] {
				var comp []string
				for {
					n := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[n] = false
					comp = append(comp, n)
					if n == f.node {
						break
					}
				}
				comps = append(comps, comp)
			}
			done := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[done] < low[parent.node] {
					low[parent.node] = low[done]
				}
			}
		}
	}
	return comps
}

// relPos renders a position compactly for inclusion in messages.
func (s *summaries) relPos(pos token.Pos) string {
	p := s.loader.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
