// Package vfs defines the Vnode and VFS interfaces (Kleiman-style, §1 of
// the paper) plus the VFS+ extensions DEcorum adds: ACL operations and
// volume-level operations (§3.3).
//
// A physical file system is "a module that implements the VFS interface
// and stores file data on a disk"; Episode implements all of VFS+, while
// other physical file systems (the FFS baseline here) may implement only a
// subset. The DEcorum client's vnode layer implements the same interface
// over RPC, which is what gives applications local/remote transparency.
package vfs

import (
	"errors"

	"decorum/internal/fs"
)

// Context carries the identity of the caller through every operation, for
// ACL checks and ownership.
type Context struct {
	User   fs.UserID
	Groups []fs.GroupID
}

// Superuser returns a context with all rights.
func Superuser() *Context { return &Context{User: fs.SuperUser} }

// Vnode is one file, directory or symlink. Implementations are safe for
// concurrent use.
type Vnode interface {
	// FID returns the file's cell-wide identity.
	FID() fs.FID

	// Attr returns the file's status information.
	Attr(ctx *Context) (fs.Attr, error)
	// SetAttr applies a partial status update and returns the result.
	SetAttr(ctx *Context, ch fs.AttrChange) (fs.Attr, error)

	// Read fills p from byte offset off, returning the count (0 at EOF).
	Read(ctx *Context, p []byte, off int64) (int, error)
	// Write stores p at byte offset off, extending the file as needed.
	Write(ctx *Context, p []byte, off int64) (int, error)

	// Lookup resolves one name in a directory.
	Lookup(ctx *Context, name string) (Vnode, error)
	// Create makes a plain file entry in a directory.
	Create(ctx *Context, name string, mode fs.Mode) (Vnode, error)
	// Mkdir makes a subdirectory.
	Mkdir(ctx *Context, name string, mode fs.Mode) (Vnode, error)
	// Symlink makes a symbolic link to target.
	Symlink(ctx *Context, name, target string) (Vnode, error)
	// Readlink returns a symlink's target.
	Readlink(ctx *Context) (string, error)
	// Link adds a hard link to target under name.
	Link(ctx *Context, name string, target Vnode) error
	// Remove deletes a non-directory entry.
	Remove(ctx *Context, name string) error
	// Rmdir deletes an empty subdirectory.
	Rmdir(ctx *Context, name string) error
	// Rename moves an entry, possibly across directories (same volume).
	Rename(ctx *Context, oldName string, newDir Vnode, newName string) error
	// ReadDir lists a directory.
	ReadDir(ctx *Context) ([]fs.Dirent, error)
}

// ACLVnode is the VFS+ extension for access control lists: any file or
// directory may carry one (§2.3).
type ACLVnode interface {
	Vnode
	// ACL returns the explicit ACL, or the mode-derived default.
	ACL(ctx *Context) (fs.ACL, error)
	// SetACL replaces the ACL. Requires RightAdmin.
	SetACL(ctx *Context, acl fs.ACL) error
}

// HashVnode is the VFS+ extension for end-to-end chunk integrity: a
// file whose physical file system maintains a per-chunk (64 KiB) hash
// tree. All hashes are SHA-256; the zero [32]byte means "no hash
// recorded" (sparse hole, or data written before hashing existed) and
// callers skip verification for such chunks.
type HashVnode interface {
	Vnode
	// HashRoot returns the file's 32-byte tree root and its leaf
	// (chunk) count. An empty or never-hashed file has a zero root.
	HashRoot(ctx *Context) ([32]byte, int64, error)
	// HashLevel returns the tree nodes at the given level (0 = leaves)
	// for the given node indices, in order. Out-of-range indices yield
	// zero hashes.
	HashLevel(ctx *Context, level int, indices []int64) ([][32]byte, error)
	// ChunkHash returns the expected hash of one chunk's bytes (clipped
	// at the file length). ok is false when no hash is recorded.
	ChunkHash(ctx *Context, idx int64) (h [32]byte, ok bool, err error)
	// SetChunkHashes installs leaf hashes starting at leaf index start.
	// Striped-volume clients use it to keep the primary's logical hash
	// tree current for data that never flows through the primary.
	// Requires write permission.
	SetChunkHashes(ctx *Context, start int64, hashes [][32]byte) error
}

// FileSystem is the VFS interface: one mounted volume.
type FileSystem interface {
	// Root returns the root directory vnode.
	Root() (Vnode, error)
	// Get resolves a FID to a vnode (for the protocol exporter).
	Get(fid fs.FID) (Vnode, error)
	// Statfs reports capacity.
	Statfs() (fs.Statfs, error)
	// Sync makes everything durable.
	Sync() error
}

// VolumeInfo describes one volume for the volume interface.
type VolumeInfo struct {
	ID       fs.VolumeID
	Name     string
	ReadOnly bool
	// CloneOf is the volume this one was cloned from (0 if original).
	CloneOf fs.VolumeID
	// RootVnode is the vnode number of the volume root.
	RootVnode uint64
	// Quota is the maximum size in blocks (0 = unlimited).
	Quota int64
	// Blocks is the current usage in blocks (approximate).
	Blocks int64
}

// VolumeOps is the VFS+ volume/aggregate extension (§2.1): operations on
// volumes that work whether or not the volume is mounted. Episode
// implements all of it; a conventional file system could implement a
// subset (§3.3).
type VolumeOps interface {
	// CreateVolume makes an empty volume with a fresh root directory.
	CreateVolume(name string, quota int64) (VolumeInfo, error)
	// DeleteVolume destroys a volume and frees its storage.
	DeleteVolume(id fs.VolumeID) error
	// Volumes enumerates the volumes on this aggregate.
	Volumes() ([]VolumeInfo, error)
	// VolumeByName finds a volume by name.
	VolumeByName(name string) (VolumeInfo, error)
	// Mount returns the FileSystem for a volume.
	Mount(id fs.VolumeID) (FileSystem, error)
	// Clone snapshots a volume: a read-only copy-on-write duplicate
	// within the same aggregate (§2.1).
	Clone(id fs.VolumeID, cloneName string) (VolumeInfo, error)
	// Dump serializes a volume (for backup, move, and replication).
	Dump(id fs.VolumeID) ([]byte, error)
	// Restore materializes a dumped volume under a (possibly new) ID.
	Restore(dump []byte, name string) (VolumeInfo, error)
}

// ErrNotSupported is returned by physical file systems that implement only
// part of VFS+ (§3.3: "it may be possible to provide some subset of
// DEcorum functionality").
var ErrNotSupported = errors.New("vfs: operation not supported by this physical file system")

// WalkLimit bounds symlink-free path walks.
const WalkLimit = 255

// Walk resolves a /-separated path from root, without following symlinks.
func Walk(ctx *Context, root Vnode, path string) (Vnode, error) {
	cur := root
	start := 0
	steps := 0
	for i := 0; i <= len(path); i++ {
		if i < len(path) && path[i] != '/' {
			continue
		}
		name := path[start:i]
		start = i + 1
		if name == "" || name == "." {
			continue
		}
		if steps++; steps > WalkLimit {
			return nil, fs.ErrInvalid
		}
		next, err := cur.Lookup(ctx, name)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}
