package vfs

import (
	"errors"
	"testing"

	"decorum/internal/fs"
)

// fakeVnode implements just enough of Vnode for Walk tests.
type fakeVnode struct {
	Vnode // panic on everything not overridden
	name  string
	kids  map[string]*fakeVnode
}

func (f *fakeVnode) Lookup(ctx *Context, name string) (Vnode, error) {
	if k, ok := f.kids[name]; ok {
		return k, nil
	}
	return nil, fs.ErrNotExist
}

func (f *fakeVnode) FID() fs.FID { return fs.FID{Vnode: uint64(len(f.name))} }

func tree() *fakeVnode {
	c := &fakeVnode{name: "c", kids: map[string]*fakeVnode{}}
	b := &fakeVnode{name: "b", kids: map[string]*fakeVnode{"c": c}}
	a := &fakeVnode{name: "a", kids: map[string]*fakeVnode{"b": b}}
	root := &fakeVnode{name: "", kids: map[string]*fakeVnode{"a": a}}
	return root
}

func TestWalkBasics(t *testing.T) {
	root := tree()
	ctx := Superuser()
	got, err := Walk(ctx, root, "a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	if got.(*fakeVnode).name != "c" {
		t.Fatalf("walked to %q", got.(*fakeVnode).name)
	}
	// Leading/trailing/double slashes and dots collapse.
	for _, p := range []string{"/a/b/c", "a//b/c/", "./a/./b/c"} {
		got, err := Walk(ctx, root, p)
		if err != nil {
			t.Fatalf("%q: %v", p, err)
		}
		if got.(*fakeVnode).name != "c" {
			t.Fatalf("%q walked to %q", p, got.(*fakeVnode).name)
		}
	}
	// Empty path returns the root itself.
	if got, err := Walk(ctx, root, ""); err != nil || got.(*fakeVnode).name != "" {
		t.Fatalf("empty path: %v", err)
	}
	// Missing component surfaces ErrNotExist.
	if _, err := Walk(ctx, root, "a/missing"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing: %v", err)
	}
}

func TestWalkDepthLimit(t *testing.T) {
	// A self-referencing directory must not loop forever.
	loop := &fakeVnode{name: "loop", kids: map[string]*fakeVnode{}}
	loop.kids["x"] = loop
	path := ""
	for i := 0; i < WalkLimit+10; i++ {
		path += "x/"
	}
	if _, err := Walk(Superuser(), loop, path); !errors.Is(err, fs.ErrInvalid) {
		t.Fatalf("deep walk: %v", err)
	}
}

func TestSuperuserContext(t *testing.T) {
	if Superuser().User != fs.SuperUser {
		t.Fatal("Superuser context wrong")
	}
}
