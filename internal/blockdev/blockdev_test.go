package blockdev

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"
)

func fill(bs int, v byte) []byte {
	p := make([]byte, bs)
	for i := range p {
		p[i] = v
	}
	return p
}

func TestMemReadWrite(t *testing.T) {
	d := NewMem(512, 16)
	if got := d.Blocks(); got != 16 {
		t.Fatalf("Blocks = %d, want 16", got)
	}
	if got := d.BlockSize(); got != 512 {
		t.Fatalf("BlockSize = %d, want 512", got)
	}
	w := fill(512, 0xAB)
	if err := d.Write(3, w); err != nil {
		t.Fatal(err)
	}
	r := make([]byte, 512)
	if err := d.Read(3, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r, w) {
		t.Fatal("read back differs from write")
	}
	// Unwritten blocks read as zero.
	if err := d.Read(4, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r, make([]byte, 512)) {
		t.Fatal("unwritten block not zero")
	}
}

func TestMemBoundsAndSize(t *testing.T) {
	d := NewMem(512, 4)
	buf := make([]byte, 512)
	if err := d.Read(4, buf); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read past end: %v, want ErrOutOfRange", err)
	}
	if err := d.Read(-1, buf); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("negative block: %v, want ErrOutOfRange", err)
	}
	if err := d.Write(0, buf[:100]); !errors.Is(err, ErrBadSize) {
		t.Errorf("short buffer: %v, want ErrBadSize", err)
	}
	if err := d.Write(0, make([]byte, 1024)); !errors.Is(err, ErrBadSize) {
		t.Errorf("long buffer: %v, want ErrBadSize", err)
	}
}

func TestMemClose(t *testing.T) {
	d := NewMem(512, 4)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if err := d.Read(0, buf); !errors.Is(err, ErrClosed) {
		t.Errorf("read after close: %v, want ErrClosed", err)
	}
	if err := d.Write(0, buf); !errors.Is(err, ErrClosed) {
		t.Errorf("write after close: %v, want ErrClosed", err)
	}
	if err := d.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("sync after close: %v, want ErrClosed", err)
	}
}

func TestMemSnapshotRestore(t *testing.T) {
	d := NewMem(256, 8)
	if err := d.Write(1, fill(256, 7)); err != nil {
		t.Fatal(err)
	}
	img := d.Snapshot()
	if err := d.Write(1, fill(256, 9)); err != nil {
		t.Fatal(err)
	}
	if err := d.Restore(img); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 256)
	if err := d.Read(1, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Fatalf("restore lost data: got %d, want 7", got[0])
	}
	if err := d.Restore(make([]byte, 10)); err == nil {
		t.Fatal("restore with wrong size should fail")
	}
}

func TestFileDevice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	d, err := CreateFile(path, 512, 32)
	if err != nil {
		t.Fatal(err)
	}
	w := fill(512, 0x5C)
	if err := d.Write(10, w); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen and verify persistence.
	d2, err := OpenFile(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Blocks() != 32 {
		t.Fatalf("reopened Blocks = %d, want 32", d2.Blocks())
	}
	r := make([]byte, 512)
	if err := d2.Read(10, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r, w) {
		t.Fatal("file device lost data across reopen")
	}
}

func TestFileDeviceBadGeometry(t *testing.T) {
	if _, err := CreateFile(filepath.Join(t.TempDir(), "x"), 0, 10); err == nil {
		t.Fatal("zero block size accepted")
	}
	path := filepath.Join(t.TempDir(), "y.img")
	d, err := CreateFile(path, 512, 3)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := OpenFile(path, 1000); err == nil {
		t.Fatal("non-multiple geometry accepted")
	}
}

func TestCrashDropAll(t *testing.T) {
	inner := NewMem(512, 8)
	d := NewCrash(inner)
	if err := d.Write(0, fill(512, 1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(1, fill(512, 2)); err != nil {
		t.Fatal(err)
	}
	// Reads see the cached write before the crash.
	got := make([]byte, 512)
	if err := d.Read(1, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Fatal("read did not observe cached write")
	}
	if d.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", d.Pending())
	}
	if err := d.Crash(DropAll, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Read(0, got); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after crash: %v, want ErrClosed", err)
	}
	// Synced block survived; unsynced one did not.
	if err := inner.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatal("synced write lost at crash")
	}
	if err := inner.Read(1, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatal("unsynced write survived DropAll crash")
	}
}

func TestCrashKeepAll(t *testing.T) {
	inner := NewMem(512, 8)
	d := NewCrash(inner)
	if err := d.Write(5, fill(512, 9)); err != nil {
		t.Fatal(err)
	}
	if err := d.Crash(KeepAll, nil); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if err := inner.Read(5, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 {
		t.Fatal("KeepAll crash lost a write")
	}
}

func TestCrashRandomSubsetPersistsSomeAndOnlyUnsynced(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	inner := NewMem(512, 64)
	d := NewCrash(inner)
	for i := int64(0); i < 64; i++ {
		if err := d.Write(i, fill(512, byte(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Crash(RandomSubset, rng); err != nil {
		t.Fatal(err)
	}
	kept, lost := 0, 0
	got := make([]byte, 512)
	for i := int64(0); i < 64; i++ {
		if err := inner.Read(i, got); err != nil {
			t.Fatal(err)
		}
		switch got[0] {
		case byte(i + 1):
			kept++
		case 0:
			lost++
		default:
			t.Fatalf("block %d has impossible content %d", i, got[0])
		}
	}
	if kept == 0 || lost == 0 {
		t.Fatalf("RandomSubset should keep some and lose some: kept=%d lost=%d", kept, lost)
	}
}

func TestCrashCleanCloseDestages(t *testing.T) {
	inner := NewMem(512, 8)
	d := NewCrash(inner)
	if err := d.Write(2, fill(512, 3)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	img := inner.Snapshot()
	if img[2*512] != 3 {
		t.Fatal("clean close must destage pending writes")
	}
}

func TestSimCountsAndCosts(t *testing.T) {
	model := CostModel{Seek: 10 * time.Millisecond, Transfer: time.Millisecond, SyncCost: 2 * time.Millisecond}
	d := NewSim(NewMem(512, 128), model)
	buf := fill(512, 1)
	// Sequential writes 0..9: one seek then transfers.
	for i := int64(0); i < 10; i++ {
		if err := d.Write(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Writes != 10 {
		t.Fatalf("Writes = %d, want 10", st.Writes)
	}
	if st.SeqWrites != 9 {
		t.Fatalf("SeqWrites = %d, want 9", st.SeqWrites)
	}
	want := model.Seek + 10*model.Transfer
	if st.SimTime != want {
		t.Fatalf("SimTime = %v, want %v", st.SimTime, want)
	}
	// A random write pays a seek.
	if err := d.Write(100, buf); err != nil {
		t.Fatal(err)
	}
	st2 := d.Stats().Sub(st)
	if st2.SimTime != model.Seek+model.Transfer {
		t.Fatalf("random write cost = %v, want %v", st2.SimTime, model.Seek+model.Transfer)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().Syncs; got != 1 {
		t.Fatalf("Syncs = %d, want 1", got)
	}
	d.ResetStats()
	if got := d.Stats(); got != (Stats{}) {
		t.Fatalf("ResetStats left %+v", got)
	}
}

func TestSimSequentialCheaperThanRandom(t *testing.T) {
	const n = 200
	buf := fill(512, 1)
	seq := NewSim(NewMem(512, 4096), DefaultCostModel)
	for i := int64(0); i < n; i++ {
		if err := seq.Write(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(7))
	rnd := NewSim(NewMem(512, 4096), DefaultCostModel)
	for i := 0; i < n; i++ {
		if err := rnd.Write(int64(rng.Intn(4096)), buf); err != nil {
			t.Fatal(err)
		}
	}
	if seq.Stats().SimTime*2 >= rnd.Stats().SimTime {
		t.Fatalf("sequential writes should be much cheaper: seq=%v rnd=%v",
			seq.Stats().SimTime, rnd.Stats().SimTime)
	}
}

// Property: for any sequence of writes, a read returns the last value
// written to that block, on every device stack.
func TestQuickLastWriteWins(t *testing.T) {
	const blocks = 32
	f := func(ops []struct {
		Block uint8
		Val   byte
	}) bool {
		mem := NewMem(64, blocks)
		stack := NewSim(NewCrash(mem), CostModel{})
		last := map[int64]byte{}
		for _, op := range ops {
			n := int64(op.Block % blocks)
			if err := stack.Write(n, fill(64, op.Val)); err != nil {
				return false
			}
			last[n] = op.Val
		}
		got := make([]byte, 64)
		for n, v := range last {
			if err := stack.Read(n, got); err != nil {
				return false
			}
			if got[0] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: after a RandomSubset crash, every block holds either its last
// synced value or a later unsynced value — never anything else.
func TestQuickCrashPreservesPrefixPerBlock(t *testing.T) {
	f := func(seed int64, ops []struct {
		Block uint8
		Val   byte
		Sync  bool
	}) bool {
		const blocks = 16
		rng := rand.New(rand.NewSource(seed))
		inner := NewMem(64, blocks)
		d := NewCrash(inner)
		synced := map[int64]byte{}
		unsynced := map[int64]byte{}
		for _, op := range ops {
			n := int64(op.Block % blocks)
			if err := d.Write(n, fill(64, op.Val)); err != nil {
				return false
			}
			unsynced[n] = op.Val
			if op.Sync {
				if err := d.Sync(); err != nil {
					return false
				}
				for k, v := range unsynced {
					synced[k] = v
				}
				unsynced = map[int64]byte{}
			}
		}
		if err := d.Crash(RandomSubset, rng); err != nil {
			return false
		}
		got := make([]byte, 64)
		for n := int64(0); n < blocks; n++ {
			if err := inner.Read(n, got); err != nil {
				return false
			}
			ok := got[0] == synced[n]
			if v, had := unsynced[n]; had && got[0] == v {
				ok = true
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
