// Package blockdev provides the simulated disks under the Episode and FFS
// physical file systems.
//
// The paper assumes "a standard UNIX disk partition using the facilities of
// the kernel device driver" (§2). We substitute block devices with three
// composable layers:
//
//   - MemDevice / FileDevice: raw storage.
//   - CrashDevice: a volatile write cache that makes writes durable only at
//     Sync, and can "crash", dropping (all or a random subset of) unsynced
//     writes. This is what lets recovery experiments lose exactly the state
//     a power failure would lose, including reordered in-flight writes.
//   - SimDevice: an instrumented wrapper counting reads, writes and syncs
//     and charging a seek/transfer cost model, so experiments can compare
//     disk traffic and simulated elapsed time (paper claims C1, C2, C9)
//     without real hardware.
package blockdev

import (
	"errors"
	"fmt"
	"sync"
)

// Device is a fixed-geometry block device. Read and Write transfer exactly
// one block; p must be BlockSize bytes long. Implementations must be safe
// for concurrent use.
type Device interface {
	// BlockSize returns the size of one block in bytes.
	BlockSize() int
	// Blocks returns the number of blocks on the device.
	Blocks() int64
	// Read fills p with the contents of block n.
	Read(n int64, p []byte) error
	// Write stores p as the new contents of block n.
	Write(n int64, p []byte) error
	// Sync makes all completed writes durable.
	Sync() error
	// Close releases resources. The device must not be used afterwards.
	Close() error
}

// Errors returned by devices.
var (
	ErrOutOfRange = errors.New("blockdev: block number out of range")
	ErrBadSize    = errors.New("blockdev: buffer is not exactly one block")
	ErrClosed     = errors.New("blockdev: device is closed")
)

func checkIO(d Device, n int64, p []byte) error {
	if n < 0 || n >= d.Blocks() {
		return fmt.Errorf("%w: block %d of %d", ErrOutOfRange, n, d.Blocks())
	}
	if len(p) != d.BlockSize() {
		return fmt.Errorf("%w: got %d, want %d", ErrBadSize, len(p), d.BlockSize())
	}
	return nil
}

// MemDevice is an in-memory block device.
type MemDevice struct {
	mu        sync.RWMutex
	blockSize int
	data      []byte
	closed    bool
}

// NewMem returns a zero-filled in-memory device with the given geometry.
func NewMem(blockSize int, blocks int64) *MemDevice {
	if blockSize <= 0 || blocks <= 0 {
		panic("blockdev: non-positive geometry")
	}
	return &MemDevice{
		blockSize: blockSize,
		data:      make([]byte, int64(blockSize)*blocks),
	}
}

// BlockSize implements Device.
func (d *MemDevice) BlockSize() int { return d.blockSize }

// Blocks implements Device.
func (d *MemDevice) Blocks() int64 { return int64(len(d.data)) / int64(d.blockSize) }

// Read implements Device.
func (d *MemDevice) Read(n int64, p []byte) error {
	if err := checkIO(d, n, p); err != nil {
		return err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrClosed
	}
	off := n * int64(d.blockSize)
	copy(p, d.data[off:off+int64(d.blockSize)])
	return nil
}

// Write implements Device.
func (d *MemDevice) Write(n int64, p []byte) error {
	if err := checkIO(d, n, p); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	off := n * int64(d.blockSize)
	copy(d.data[off:off+int64(d.blockSize)], p)
	return nil
}

// Sync implements Device. Memory is always "durable" for our purposes.
func (d *MemDevice) Sync() error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrClosed
	}
	return nil
}

// Close implements Device.
func (d *MemDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	return nil
}

// Snapshot returns a copy of the device contents, for tests that compare
// before/after images.
func (d *MemDevice) Snapshot() []byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]byte, len(d.data))
	copy(out, d.data)
	return out
}

// Restore overwrites the device contents from a snapshot taken earlier.
func (d *MemDevice) Restore(img []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(img) != len(d.data) {
		return fmt.Errorf("blockdev: snapshot size %d != device size %d", len(img), len(d.data))
	}
	copy(d.data, img)
	return nil
}
