package blockdev

import (
	"sync"
	"time"
)

// CostModel charges simulated time for disk operations. A request to the
// block after the previous one is sequential and pays only transfer time;
// anything else pays a seek first. Sync pays a fixed cache-flush cost.
// Defaults approximate a late-80s SCSI disk, which is the era the paper's
// FFS-vs-logging claims were made in; only relative shapes matter.
type CostModel struct {
	Seek     time.Duration // per non-sequential access
	Transfer time.Duration // per block moved
	SyncCost time.Duration // per cache flush
}

// DefaultCostModel is a 1990-ish disk: 16 ms average seek+rotation,
// ~1 MB/s media rate (8 KiB block ≈ 1 ms... we charge per block below),
// 1 ms flush.
var DefaultCostModel = CostModel{
	Seek:     16 * time.Millisecond,
	Transfer: 1 * time.Millisecond,
	SyncCost: 1 * time.Millisecond,
}

// Stats is a snapshot of the counters a SimDevice accumulates.
type Stats struct {
	Reads      int64
	Writes     int64
	Syncs      int64
	SeqWrites  int64 // writes to lastBlock+1
	SeqReads   int64
	BytesRead  int64
	BytesWrite int64
	SimTime    time.Duration // model-derived elapsed disk time
}

// Sub returns s - prev, for measuring an interval.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Reads:      s.Reads - prev.Reads,
		Writes:     s.Writes - prev.Writes,
		Syncs:      s.Syncs - prev.Syncs,
		SeqWrites:  s.SeqWrites - prev.SeqWrites,
		SeqReads:   s.SeqReads - prev.SeqReads,
		BytesRead:  s.BytesRead - prev.BytesRead,
		BytesWrite: s.BytesWrite - prev.BytesWrite,
		SimTime:    s.SimTime - prev.SimTime,
	}
}

// SimDevice wraps a Device with I/O accounting and a cost model. It is the
// instrument behind experiments C1, C2 and C9.
type SimDevice struct {
	mu    sync.Mutex
	inner Device
	model CostModel
	stats Stats
	last  int64 // last block touched; -2 initially so the first access seeks
}

// NewSim wraps dev. A zero CostModel counts operations without charging
// simulated time.
func NewSim(dev Device, model CostModel) *SimDevice {
	return &SimDevice{inner: dev, model: model, last: -2}
}

// BlockSize implements Device.
func (d *SimDevice) BlockSize() int { return d.inner.BlockSize() }

// Blocks implements Device.
func (d *SimDevice) Blocks() int64 { return d.inner.Blocks() }

func (d *SimDevice) charge(n int64, write bool) {
	seq := n == d.last+1
	if !seq {
		d.stats.SimTime += d.model.Seek
	}
	d.stats.SimTime += d.model.Transfer
	d.last = n
	if write {
		d.stats.Writes++
		d.stats.BytesWrite += int64(d.inner.BlockSize())
		if seq {
			d.stats.SeqWrites++
		}
	} else {
		d.stats.Reads++
		d.stats.BytesRead += int64(d.inner.BlockSize())
		if seq {
			d.stats.SeqReads++
		}
	}
}

// Read implements Device.
func (d *SimDevice) Read(n int64, p []byte) error {
	d.mu.Lock()
	d.charge(n, false)
	d.mu.Unlock()
	return d.inner.Read(n, p)
}

// Write implements Device.
func (d *SimDevice) Write(n int64, p []byte) error {
	d.mu.Lock()
	d.charge(n, true)
	d.mu.Unlock()
	return d.inner.Write(n, p)
}

// Sync implements Device.
func (d *SimDevice) Sync() error {
	d.mu.Lock()
	d.stats.Syncs++
	d.stats.SimTime += d.model.SyncCost
	d.mu.Unlock()
	return d.inner.Sync()
}

// Close implements Device.
func (d *SimDevice) Close() error { return d.inner.Close() }

// Stats returns a snapshot of the accumulated counters.
func (d *SimDevice) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters (the seek position is kept).
func (d *SimDevice) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}
