package blockdev

import (
	"fmt"
	"os"
	"sync"
)

// FileDevice is a block device backed by a regular file, used by the
// command-line tools so aggregates survive process restarts.
type FileDevice struct {
	mu        sync.Mutex
	f         *os.File
	blockSize int
	blocks    int64
	closed    bool
}

// CreateFile creates (or truncates) path as a device with the given
// geometry.
func CreateFile(path string, blockSize int, blocks int64) (*FileDevice, error) {
	if blockSize <= 0 || blocks <= 0 {
		return nil, fmt.Errorf("blockdev: non-positive geometry %dx%d", blockSize, blocks)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(blockSize) * blocks); err != nil {
		f.Close()
		return nil, err
	}
	return &FileDevice{f: f, blockSize: blockSize, blocks: blocks}, nil
}

// OpenFile opens an existing device file with known geometry.
func OpenFile(path string, blockSize int) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if blockSize <= 0 || st.Size()%int64(blockSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("blockdev: file size %d not a multiple of block size %d", st.Size(), blockSize)
	}
	return &FileDevice{f: f, blockSize: blockSize, blocks: st.Size() / int64(blockSize)}, nil
}

// BlockSize implements Device.
func (d *FileDevice) BlockSize() int { return d.blockSize }

// Blocks implements Device.
func (d *FileDevice) Blocks() int64 { return d.blocks }

// Read implements Device.
func (d *FileDevice) Read(n int64, p []byte) error {
	if err := checkIO(d, n, p); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	_, err := d.f.ReadAt(p, n*int64(d.blockSize))
	return err
}

// Write implements Device.
func (d *FileDevice) Write(n int64, p []byte) error {
	if err := checkIO(d, n, p); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	_, err := d.f.WriteAt(p, n*int64(d.blockSize))
	return err
}

// Sync implements Device.
func (d *FileDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.f.Sync()
}

// Close implements Device.
func (d *FileDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.f.Close()
}
