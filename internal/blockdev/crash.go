package blockdev

import (
	"math/rand"
	"sync"
)

// CrashDevice models a disk with a volatile write cache. Writes land in the
// cache; Sync destages everything to the underlying device and makes it
// durable. Crash discards the cache according to a CrashMode, simulating a
// power failure — including the nasty case where the disk had persisted an
// arbitrary subset of un-synced writes (reordering).
//
// The write-ahead rule of the Episode buffer package (§2.2) is exactly what
// makes recovery correct under this model, and the property tests in
// internal/episode exercise it with RandomSubset crashes.
type CrashDevice struct {
	mu      sync.Mutex
	inner   Device
	pending map[int64][]byte // block -> latest unsynced contents
	order   []int64          // write order, for deterministic iteration
	crashed bool
}

// CrashMode selects what happens to unsynced writes at Crash.
type CrashMode int

// Crash modes.
const (
	// DropAll loses every write since the last Sync.
	DropAll CrashMode = iota
	// KeepAll persists every write (crash immediately after a full destage).
	KeepAll
	// RandomSubset persists each unsynced write independently with
	// probability 1/2, modelling arbitrary write-cache reordering.
	RandomSubset
)

// NewCrash wraps dev with a volatile write cache.
func NewCrash(dev Device) *CrashDevice {
	return &CrashDevice{inner: dev, pending: make(map[int64][]byte)}
}

// BlockSize implements Device.
func (d *CrashDevice) BlockSize() int { return d.inner.BlockSize() }

// Blocks implements Device.
func (d *CrashDevice) Blocks() int64 { return d.inner.Blocks() }

// Read implements Device. Reads observe the cache (a disk returns the data
// it has accepted, durable or not).
func (d *CrashDevice) Read(n int64, p []byte) error {
	if err := checkIO(d, n, p); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrClosed
	}
	if b, ok := d.pending[n]; ok {
		copy(p, b)
		return nil
	}
	return d.inner.Read(n, p)
}

// Write implements Device.
func (d *CrashDevice) Write(n int64, p []byte) error {
	if err := checkIO(d, n, p); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrClosed
	}
	if _, ok := d.pending[n]; !ok {
		d.order = append(d.order, n)
	}
	b := make([]byte, len(p))
	copy(b, p)
	d.pending[n] = b
	return nil
}

// Sync implements Device: destage the cache and sync the inner device.
func (d *CrashDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrClosed
	}
	return d.destageLocked()
}

func (d *CrashDevice) destageLocked() error {
	for _, n := range d.order {
		if b, ok := d.pending[n]; ok {
			if err := d.inner.Write(n, b); err != nil {
				return err
			}
		}
	}
	d.pending = make(map[int64][]byte)
	d.order = d.order[:0]
	return d.inner.Sync()
}

// Close implements Device: a clean shutdown destages first.
func (d *CrashDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return d.inner.Close()
	}
	if err := d.destageLocked(); err != nil {
		return err
	}
	return d.inner.Close()
}

// Pending returns the number of unsynced writes, for tests.
func (d *CrashDevice) Pending() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pending)
}

// Crash simulates a power failure. Unsynced writes are handled per mode
// (rng is used only for RandomSubset; it may be nil for other modes).
// After Crash the device rejects all I/O; reopen the underlying device to
// simulate a reboot.
func (d *CrashDevice) Crash(mode CrashMode, rng *rand.Rand) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrClosed
	}
	d.crashed = true
	switch mode {
	case DropAll:
		// nothing persisted
	case KeepAll:
		for _, n := range d.order {
			if b, ok := d.pending[n]; ok {
				if err := d.inner.Write(n, b); err != nil {
					return err
				}
			}
		}
	case RandomSubset:
		for _, n := range d.order {
			if b, ok := d.pending[n]; ok && rng.Intn(2) == 0 {
				if err := d.inner.Write(n, b); err != nil {
					return err
				}
			}
		}
	}
	d.pending = nil
	d.order = nil
	return d.inner.Sync()
}
