// Package decorum is the public API of this reproduction of the DEcorum
// file system (Kazar et al., "DEcorum File System Architectural Overview",
// USENIX Summer 1990) — the AFS successor that shipped as DCE/DFS.
//
// The package assembles the internal components into the three systems the
// paper describes:
//
//   - Episode, the fast-restarting physical file system with volumes,
//     aggregates, copy-on-write clones, ACLs, and log-based recovery;
//   - the protocol exporter (file server), with its token manager, host
//     model, glue layer and volume server;
//   - the cache manager (client), with typed-token caching providing
//     single-system UNIX semantics.
//
// # Quick start
//
//	cell := decorum.NewCell()
//	srv, _ := cell.AddServer("fs1", 64<<20)
//	vol, _ := srv.CreateVolume("user.alice", 0)
//	cl, _ := cell.NewClient("workstation-1", decorum.SuperUser)
//	fsys, _ := cl.Mount("user.alice")
//	root, _ := fsys.Root()
//	f, _ := root.Create(decorum.Superuser(), "hello.txt", 0o644)
//	f.Write(decorum.Superuser(), []byte("hello"), 0)
//
// A Cell wires servers, clients, and the volume location database together
// in process (over net.Pipe associations); the cmd/ tools run the same
// components across real TCP connections.
package decorum

import (
	"fmt"
	"net"
	"sync"

	"decorum/internal/blockdev"
	"decorum/internal/client"
	"decorum/internal/episode"
	"decorum/internal/fs"
	"decorum/internal/locking"
	"decorum/internal/rpc"
	"decorum/internal/server"
	"decorum/internal/vfs"
	"decorum/internal/vldb"
)

// Re-exported types: the file system surface a user programs against.
type (
	// FileSystem is a mounted volume (the VFS interface).
	FileSystem = vfs.FileSystem
	// Vnode is one file, directory, or symlink.
	Vnode = vfs.Vnode
	// ACLVnode is a vnode with the VFS+ ACL extension.
	ACLVnode = vfs.ACLVnode
	// Context carries the caller's identity.
	Context = vfs.Context
	// VolumeInfo describes one volume.
	VolumeInfo = vfs.VolumeInfo
	// FID is a cell-wide file identifier.
	FID = fs.FID
	// Attr is file status information.
	Attr = fs.Attr
	// AttrChange is a partial attribute update.
	AttrChange = fs.AttrChange
	// ACL is an access control list.
	ACL = fs.ACL
	// Mode holds UNIX permission bits.
	Mode = fs.Mode
	// UserID identifies a principal.
	UserID = fs.UserID
	// VolumeID identifies a volume cell-wide.
	VolumeID = fs.VolumeID
	// Dirent is a directory entry.
	Dirent = fs.Dirent
)

// SuperUser is the all-powerful identity.
const SuperUser = fs.SuperUser

// Superuser returns a context with all rights.
func Superuser() *Context { return vfs.Superuser() }

// UserContext returns a context for an ordinary principal.
func UserContext(user UserID) *Context { return &Context{User: user} }

// DefaultBlockSize is the simulated disk block size for cell servers.
const DefaultBlockSize = 4096

// Cell is an in-process DEcorum cell: servers, clients, and a volume
// location database wired together over in-memory associations.
type Cell struct {
	vldb *vldb.Server

	mu      sync.Mutex
	servers map[string]*Server
	order   *locking.Checker
	rpcOpts rpc.Options
}

// NewCell creates an empty cell.
func NewCell() *Cell {
	return &Cell{
		vldb:    vldb.NewServer(0, 1),
		servers: make(map[string]*Server),
	}
}

// SetRPCOptions configures associations created afterwards (latency
// injection for experiments, worker pool sizes).
func (c *Cell) SetRPCOptions(opts rpc.Options) { c.rpcOpts = opts }

// EnableLockChecker arms the §6 lock-order checker on everything created
// afterwards; Violations reports what it caught.
func (c *Cell) EnableLockChecker() { c.order = locking.New() }

// Violations returns lock-hierarchy violations recorded so far.
func (c *Cell) Violations() []string { return c.order.Violations() }

// VLDB exposes the cell's volume location database.
func (c *Cell) VLDB() *vldb.Server { return c.vldb }

// Server is one file server in a cell.
type Server struct {
	*server.Server
	cell *Cell
	name string
	agg  *episode.Aggregate
	dev  *blockdev.MemDevice
}

// AddServer creates a file server with a fresh in-memory aggregate of the
// given size in bytes.
func (c *Cell) AddServer(name string, bytes int64) (*Server, error) {
	blocks := bytes / DefaultBlockSize
	if blocks < 64 {
		blocks = 64
	}
	dev := blockdev.NewMem(DefaultBlockSize, blocks)
	agg, err := episode.Format(dev, episode.Options{})
	if err != nil {
		return nil, err
	}
	return c.addServerWith(name, agg, dev)
}

func (c *Cell) addServerWith(name string, agg *episode.Aggregate, dev *blockdev.MemDevice) (*Server, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.servers[name]; ok {
		return nil, fmt.Errorf("decorum: server %q already exists", name)
	}
	srv := server.New(server.Options{
		Name: name,
		RPC:  c.rpcOpts,
		Dial: c.dial,
	}, agg)
	if c.order != nil {
		srv.Glue().Order = c.order
	}
	s := &Server{Server: srv, cell: c, name: name, agg: agg, dev: dev}
	c.servers[name] = s
	return s, nil
}

// dial connects to a cell server by name over an in-memory pipe.
func (c *Cell) dial(addr string) (net.Conn, error) {
	c.mu.Lock()
	s, ok := c.servers[addr]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("decorum: no server %q in cell", addr)
	}
	clientSide, serverSide := net.Pipe()
	s.Attach(serverSide)
	return clientSide, nil
}

// Dial exposes the in-process transport (experiments attach baseline
// clients with it).
func (c *Cell) Dial(addr string) (net.Conn, error) { return c.dial(addr) }

// Name returns the server's cell address.
func (s *Server) Name() string { return s.name }

// Aggregate exposes the server's Episode aggregate.
func (s *Server) Aggregate() *episode.Aggregate { return s.agg }

// Device exposes the server's simulated disk.
func (s *Server) Device() *blockdev.MemDevice { return s.dev }

// CreateVolume makes a volume on this server under a cell-wide ID
// allocated by the VLDB and registers its location there.
func (s *Server) CreateVolume(name string, quota int64) (VolumeInfo, error) {
	id := s.cell.vldb.AllocID()
	info, err := s.agg.CreateVolumeWithID(name, quota, id)
	if err != nil {
		return VolumeInfo{}, err
	}
	if err := s.cell.vldb.Register(vldb.Entry{ID: info.ID, Name: name, RWAddr: s.name}); err != nil {
		return VolumeInfo{}, err
	}
	return info, nil
}

// Client is one cache manager in a cell.
type Client struct {
	*client.Client
	cell *Cell
}

// NewClient creates a cache manager attached to the cell (in-memory,
// "diskless" data cache; use NewClientWithCacheDir for a disk cache).
func (c *Cell) NewClient(name string, user UserID) (*Client, error) {
	return c.newClient(name, user, "")
}

// NewClientWithCacheDir creates a cache manager with a disk-backed data
// cache under dir (§4.2's standard configuration).
func (c *Cell) NewClientWithCacheDir(name string, user UserID, dir string) (*Client, error) {
	return c.newClient(name, user, dir)
}

// NewAblationClient creates a cache manager with byte-range data tokens
// DISABLED (every data token covers the whole file) — the DESIGN.md
// ablation behind experiment C4.
func (c *Cell) NewAblationClient(name string, user UserID) (*Client, error) {
	cl, err := client.New(client.Options{
		Name:                name,
		User:                user,
		Dial:                c.dial,
		Locate:              vldb.NewLocalClient(c.vldb),
		RPC:                 c.rpcOpts,
		Order:               c.order,
		WholeFileDataTokens: true,
	})
	if err != nil {
		return nil, err
	}
	return &Client{Client: cl, cell: c}, nil
}

func (c *Cell) newClient(name string, user UserID, cacheDir string) (*Client, error) {
	cl, err := client.New(client.Options{
		Name:     name,
		User:     user,
		Dial:     c.dial,
		Locate:   vldb.NewLocalClient(c.vldb),
		CacheDir: cacheDir,
		RPC:      c.rpcOpts,
		Order:    c.order,
	})
	if err != nil {
		return nil, err
	}
	return &Client{Client: cl, cell: c}, nil
}

// Mount resolves a volume by name through the VLDB and mounts it.
func (cl *Client) Mount(volumeName string) (FileSystem, error) {
	return cl.MountVolumeByName(volumeName)
}
